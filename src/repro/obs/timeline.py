"""Windowed time-series metrics on the simulated clock.

Counters and histograms are cumulative — perfect for end-of-run
totals, useless for "when did the overload start".  The
:class:`TimelineRecorder` closes that gap: every counter increment
and histogram observation in an enabled session is also logged as a
``(time, value)`` event (gauges already keep their sample history via
:class:`~repro.sim.monitor.Monitor`), and :func:`timeline_rows` folds
the event log into fixed-width windows — rates, queue-depth
time-averages, in-flight maxima and latency digests per window, per
metric, per rank.

The output is a tidy "experiment dataframe": a list of plain dicts,
one row per (window, metric), with explicit ``truncated`` marking on
the final partial window — ready for the harness figure code, for
:func:`render_timeline`'s text view, and for offline re-analysis via
the :func:`write_metrics_jsonl` / :func:`load_metrics_jsonl`
round-trip (the metrics twin of
:func:`~repro.obs.perfetto.write_chrome_trace`).

Zero-cost contract: the recorder is only ever invoked from
instrumentation points already guarded by ``env.obs is None``, and
recording appends to Python lists — no simulation events, no clock
interaction — so runs stay byte-identical with observability on or
off.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Optional

import numpy as np

from repro.errors import ObservabilityError

#: Format version stamped into metrics JSONL files.
METRICS_FORMAT_VERSION = 1


class TimelineRecorder:
    """Timestamped event log behind the cumulative metrics."""

    def __init__(self) -> None:
        #: Counter increments: name -> [(t, amount), ...] in time order.
        self.counter_events: dict[str, list[tuple[float, float]]] = {}
        #: Histogram observations: name -> [(t, value), ...].
        self.value_events: dict[str, list[tuple[float, float]]] = {}

    def record_inc(self, name: str, t: float, amount: float) -> None:
        """Log one counter increment."""
        self.counter_events.setdefault(name, []).append((t, amount))

    def record_value(self, name: str, t: float, value: float) -> None:
        """Log one histogram observation."""
        self.value_events.setdefault(name, []).append((t, value))

    def __len__(self) -> int:
        return (sum(len(v) for v in self.counter_events.values())
                + sum(len(v) for v in self.value_events.values()))


def _windows(end: float, width: float) -> list[tuple[float, float]]:
    if width <= 0:
        raise ObservabilityError(
            f"window width must be positive, got {width}")
    count = max(1, math.ceil(end / width - 1e-12)) if end > 0 else 1
    return [(i * width, (i + 1) * width) for i in range(count)]


def timeline_rows(session: Any, width: float,
                  end: Optional[float] = None) -> list[dict[str, Any]]:
    """Fold a session's metrics into fixed-width window rows.

    One row per (window, metric): counters get ``count`` and ``rate``
    (events per second of window actually covered), histograms get
    ``count``/``mean``/``p50``/``p99``, gauges get the time-weighted
    ``mean`` plus ``max`` and ``last``.  The final window is clipped
    to *end* (default: the trace extent) and marked
    ``truncated=True`` when partial, so a host that died mid-window
    reads as exactly that instead of a mysteriously low rate.
    """
    end = session.tracer.extent if end is None else end
    timeline: TimelineRecorder = session.timeline
    rows: list[dict[str, Any]] = []

    def base_row(i: int, t0: float, t1: float, name: str,
                 kind: str) -> dict[str, Any]:
        clipped = min(t1, end)
        return {
            "window": i, "t0": t0, "t1": clipped,
            "metric": name, "kind": kind,
            "truncated": clipped < t1,
        }

    spans = _windows(end, width)
    for name in sorted(timeline.counter_events):
        events = timeline.counter_events[name]
        for i, (t0, t1) in enumerate(spans):
            row = base_row(i, t0, t1, name, "counter")
            amounts = [a for t, a in events if t0 <= t < t1
                       or (t == end and t1 >= end)]
            covered = row["t1"] - row["t0"]
            row["count"] = float(sum(amounts))
            row["rate"] = (row["count"] / covered if covered > 0
                           else 0.0)
            rows.append(row)

    for name in sorted(timeline.value_events):
        events = timeline.value_events[name]
        for i, (t0, t1) in enumerate(spans):
            row = base_row(i, t0, t1, name, "histogram")
            values = [v for t, v in events if t0 <= t < t1
                      or (t == end and t1 >= end)]
            row["count"] = float(len(values))
            if values:
                arr = np.asarray(values)
                row["mean"] = float(np.mean(arr))
                row["p50"] = float(np.percentile(arr, 50))
                row["p99"] = float(np.percentile(arr, 99))
            else:
                row["mean"] = row["p50"] = row["p99"] = None
            rows.append(row)

    gauges = sorted((g for g in session.metrics.gauges() if len(g)),
                    key=lambda g: g.name)
    for gauge in gauges:
        samples = gauge.samples
        for i, (t0, t1) in enumerate(spans):
            row = base_row(i, t0, t1, gauge.name, "gauge")
            row.update(_gauge_window(samples, t0, row["t1"]))
            rows.append(row)
    return rows


def _gauge_window(samples: list[tuple[float, float]], t0: float,
                  t1: float) -> dict[str, Optional[float]]:
    """Time-weighted mean / max / last of a step signal on [t0, t1]."""
    # Value entering the window: the last sample at or before t0.
    current: Optional[float] = None
    for t, v in samples:
        if t <= t0:
            current = v
        else:
            break
    total = 0.0
    peak = current
    last = current
    cursor = t0
    for t, v in samples:
        if t <= t0:
            continue
        if t >= t1:
            break
        if current is not None:
            total += current * (t - cursor)
        cursor = t
        current = v
        peak = v if peak is None else max(peak, v)
        last = v
    if current is not None:
        total += current * (t1 - cursor)
    width = t1 - t0
    if last is None:
        return {"mean": None, "max": None, "last": None}
    return {
        "mean": total / width if width > 0 else float(last),
        "max": float(peak),
        "last": float(last),
    }


def render_timeline(session: Any, width: float,
                    metrics: Optional[list[str]] = None,
                    end: Optional[float] = None) -> str:
    """Text view of the windowed timeline, one block per metric.

    *metrics* filters by exact name; default is every recorded
    metric.  Deterministic: metrics sort by name, windows by index.
    """
    rows = timeline_rows(session, width, end=end)
    if metrics is not None:
        wanted = set(metrics)
        rows = [r for r in rows if r["metric"] in wanted]
    lines = [f"timeline (window {width * 1000:.1f} ms)"]
    if not rows:
        lines.append("  no recorded metrics")
        return "\n".join(lines)
    by_metric: dict[str, list[dict[str, Any]]] = {}
    for row in rows:
        by_metric.setdefault(row["metric"], []).append(row)
    for name in sorted(by_metric):
        group = sorted(by_metric[name], key=lambda r: r["window"])
        kind = group[0]["kind"]
        lines.append(f"  {name} [{kind}]")
        if kind == "counter":
            header = f"    {'win':>4} {'t0 ms':>9} {'count':>7} {'rate/s':>9}"
        elif kind == "histogram":
            header = (f"    {'win':>4} {'t0 ms':>9} {'count':>7} "
                      f"{'p50 ms':>9} {'p99 ms':>9}")
        else:
            header = (f"    {'win':>4} {'t0 ms':>9} {'mean':>8} "
                      f"{'max':>8} {'last':>8}")
        lines.append(header)
        for row in group:
            mark = " *" if row["truncated"] else ""
            if kind == "counter":
                lines.append(
                    f"    {row['window']:>4} {row['t0'] * 1000:>9.1f} "
                    f"{row['count']:>7.0f} {row['rate']:>9.1f}{mark}")
            elif kind == "histogram":
                p50 = ("      -" if row["p50"] is None
                       else f"{row['p50'] * 1000:>9.2f}")
                p99 = ("      -" if row["p99"] is None
                       else f"{row['p99'] * 1000:>9.2f}")
                lines.append(
                    f"    {row['window']:>4} {row['t0'] * 1000:>9.1f} "
                    f"{row['count']:>7.0f} {p50:>9} {p99:>9}{mark}")
            else:
                def fmt(v: Optional[float]) -> str:
                    return "       -" if v is None else f"{v:>8.2f}"
                lines.append(
                    f"    {row['window']:>4} {row['t0'] * 1000:>9.1f} "
                    f"{fmt(row['mean'])} {fmt(row['max'])} "
                    f"{fmt(row['last'])}{mark}")
    if any(r["truncated"] for r in rows):
        lines.append("  * window truncated at end of recording")
    return "\n".join(lines)


# -- offline persistence --------------------------------------------------
def _dump_line(obj: dict[str, Any]) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def write_metrics_jsonl(session: Any, path: str | Path) -> Path:
    """Serialise a session's metrics + request traces as JSONL.

    The metrics twin of
    :func:`~repro.obs.perfetto.write_chrome_trace`: one self-framing
    JSON object per line — meta, counters (with their timeline
    events), gauges (sample history), histograms (observations and
    events), power monitors and sampled request traces.  The file
    round-trips through :func:`load_metrics_jsonl` byte-for-byte and
    is what ``trace-analyze`` consumes offline.
    """
    lines = [_dump_line({
        "kind": "meta",
        "version": METRICS_FORMAT_VERSION,
        "extent": session.tracer.extent,
        "sample_every": session.reqtrace.sample_every,
    })]
    timeline: TimelineRecorder = session.timeline
    for counter in session.metrics.counters():
        lines.append(_dump_line({
            "kind": "counter", "name": counter.name,
            "value": counter.value,
            "events": [[t, a] for t, a in
                       timeline.counter_events.get(counter.name, [])],
        }))
    for gauge in session.metrics.gauges():
        lines.append(_dump_line({
            "kind": "gauge", "name": gauge.name,
            "samples": [[t, v] for t, v in gauge.samples],
        }))
    for hist in session.metrics.histograms():
        lines.append(_dump_line({
            "kind": "histogram", "name": hist.name,
            "observations": list(hist.observations),
            "events": [[t, v] for t, v in
                       timeline.value_events.get(hist.name, [])],
        }))
    for device, monitor in sorted(session.power_monitors().items()):
        lines.append(_dump_line({
            "kind": "power", "device": device,
            "samples": [[t, v] for t, v in
                        zip(monitor.times, monitor.values)],
        }))
    for trace in session.reqtrace.traces():
        lines.append(_dump_line({
            "kind": "trace", "trace_id": trace.trace_id,
            "hops": [{"span": h.span_id, "parent": h.parent_span,
                      "stage": h.stage, "track": h.track, "t": h.t,
                      "args": h.args} for h in trace.hops],
        }))
    path = Path(path)
    path.write_text("\n".join(lines) + "\n")
    return path


def load_metrics_jsonl(path: str | Path) -> Any:
    """Reconstruct an :class:`~repro.obs.session.ObsSession` view
    from a :func:`write_metrics_jsonl` file.

    The loaded session supports the read side — ``timeline_rows``,
    waterfalls, alerts, a second ``write_metrics_jsonl`` — but is not
    attached to any environment and records nothing further.
    """
    from repro.obs.reqtrace import Hop, RequestTrace
    from repro.obs.session import ObsSession

    path = Path(path)
    try:
        records = [json.loads(line)
                   for line in path.read_text().splitlines() if line]
    except json.JSONDecodeError as exc:
        raise ObservabilityError(
            f"{path}: not a metrics JSONL file ({exc})") from exc
    if not records or records[0].get("kind") != "meta":
        raise ObservabilityError(
            f"{path}: not a metrics JSONL file (missing meta line)")
    meta = records[0]
    if meta.get("version") != METRICS_FORMAT_VERSION:
        raise ObservabilityError(
            f"{path}: unsupported metrics format version "
            f"{meta.get('version')!r}")
    session = ObsSession(sample_every=meta.get("sample_every", 1))
    session.tracer._high_water = float(meta.get("extent", 0.0))
    for rec in records[1:]:
        kind = rec.get("kind")
        if kind == "counter":
            counter = session.metrics.counter(rec["name"])
            counter.value = float(rec["value"])
            session.timeline.counter_events[rec["name"]] = [
                (float(t), float(a)) for t, a in rec["events"]]
        elif kind == "gauge":
            gauge = session.metrics.gauge(rec["name"])
            monitor = gauge._monitor
            monitor.times = [float(t) for t, _ in rec["samples"]]
            monitor.values = [float(v) for _, v in rec["samples"]]
        elif kind == "histogram":
            hist = session.metrics.histogram(rec["name"])
            hist.observations = [float(v)
                                 for v in rec["observations"]]
            session.timeline.value_events[rec["name"]] = [
                (float(t), float(v)) for t, v in rec["events"]]
        elif kind == "power":
            monitor = session.power_monitor(rec["device"])
            monitor.times = [float(t) for t, _ in rec["samples"]]
            monitor.values = [float(v) for _, v in rec["samples"]]
        elif kind == "trace":
            trace = RequestTrace(trace_id=int(rec["trace_id"]))
            for h in rec["hops"]:
                trace.hops.append(Hop(
                    span_id=int(h["span"]),
                    parent_span=int(h["parent"]),
                    stage=h["stage"], track=h["track"],
                    t=float(h["t"]), args=dict(h["args"])))
            session.reqtrace._traces[trace.trace_id] = trace
        else:
            raise ObservabilityError(
                f"{path}: unknown record kind {kind!r}")
    return session
