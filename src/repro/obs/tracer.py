"""Span-based tracing stamped with simulated time.

A :class:`Span` is a named interval ``[start, end]`` on a *track* — a
device, a USB link, a host thread.  The :class:`Tracer` collects spans
with correct parent/child nesting per track, so a multi-stick run
renders as the paper's Fig. 4-style timeline when exported to
Perfetto (:mod:`repro.obs.perfetto`).

Timestamps come from the simulated clock of whatever
:class:`~repro.sim.core.Environment` the tracer is bound to.  Because
experiment drivers create a fresh environment per run, re-binding
shifts an epoch offset forward so successive runs concatenate on one
monotonic timeline instead of overlapping at ``t=0``.

The default tracer in the instrumented stack is *no* tracer
(``Environment.obs is None``), which costs one attribute check per
instrumentation point; :class:`NullTracer` additionally provides an
object-shaped no-op for code that wants to hold a tracer
unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.errors import ObservabilityError


@dataclass
class Span:
    """One named interval on a track, with optional parent."""

    name: str
    track: str
    start: float
    end: Optional[float] = None
    args: dict[str, Any] = field(default_factory=dict)
    parent: Optional["Span"] = None

    @property
    def duration(self) -> float:
        """Span length in simulated seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def finished(self) -> bool:
        """True once :meth:`Tracer.end` has closed the span."""
        return self.end is not None


class _SpanHandle:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Optional[Span]) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Optional[Span]:
        return self.span

    def __exit__(self, *exc: Any) -> None:
        if self.span is not None:
            self._tracer.end(self.span)


class Tracer:
    """Collects spans against the simulated clock.

    Bind the tracer to an environment with :meth:`bind`; until then
    (and after the environment is gone) timestamps freeze at the
    high-water mark of everything recorded so far.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.spans: list[Span] = []
        self._enabled = bool(enabled)
        self._env: Any = None
        self._offset = 0.0
        self._base = 0.0
        self._high_water = 0.0
        self._stacks: dict[str, list[Span]] = {}

    # -- clock ----------------------------------------------------------
    def bind(self, env: Any) -> None:
        """Stamp subsequent spans with *env*'s simulated clock.

        Re-binding advances the epoch offset to the high-water mark so
        a new run's ``t=0`` lands after everything already recorded.
        """
        self._env = env
        self._offset = self._high_water
        self._base = env.now

    def now(self) -> float:
        """Current trace timestamp (offset-corrected simulated time)."""
        if self._env is None:
            return self._high_water
        t = self._offset + (self._env.now - self._base)
        if t > self._high_water:
            self._high_water = t
        return t

    def timestamp(self, env_time: float) -> float:
        """Map a raw environment clock reading onto the trace
        timeline (same offset correction as :meth:`now`), e.g. to
        backdate a record to a submit time noted earlier."""
        if self._env is None:
            return self._high_water
        return self._offset + (env_time - self._base)

    # -- enable / disable ------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether the tracer records anything at all."""
        return self._enabled

    def enable(self) -> None:
        """Resume recording spans."""
        self._enabled = True

    def disable(self) -> None:
        """Stop recording; subsequent begin/end/instant are no-ops."""
        self._enabled = False

    # -- recording --------------------------------------------------------
    def begin(self, name: str, track: str = "host",
              **args: Any) -> Optional[Span]:
        """Open a span now; returns it (or None when disabled)."""
        if not self._enabled:
            return None
        stack = self._stacks.setdefault(track, [])
        span = Span(name=name, track=track, start=self.now(),
                    args=args, parent=stack[-1] if stack else None)
        stack.append(span)
        self.spans.append(span)
        return span

    def end(self, span: Optional[Span]) -> None:
        """Close *span* at the current timestamp.

        Accepts ``None`` (the disabled-begin result) so call sites can
        pair begin/end unconditionally.  Out-of-order ends are
        tolerated: the span is removed from its track stack wherever
        it sits.
        """
        if span is None or not self._enabled:
            return
        if span.end is not None:
            raise ObservabilityError(
                f"span {span.name!r} already ended")
        span.end = self.now()
        stack = self._stacks.get(span.track, [])
        if span in stack:
            stack.remove(span)

    def span(self, name: str, track: str = "host",
             **args: Any) -> _SpanHandle:
        """Context manager form: ``with tracer.span("run"): ...``."""
        return _SpanHandle(self, self.begin(name, track, **args))

    def instant(self, name: str, track: str = "host",
                **args: Any) -> None:
        """Record a zero-duration marker event."""
        if not self._enabled:
            return
        t = self.now()
        self.spans.append(Span(name=name, track=track, start=t, end=t,
                               args=args))

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def tracks(self) -> list[str]:
        """Track names in first-appearance order."""
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.track, None)
        return list(seen)

    def by_name(self, name: str) -> list[Span]:
        """All spans called *name*."""
        return [s for s in self.spans if s.name == name]

    def by_track(self, track: str) -> list[Span]:
        """All spans on *track*, in begin order."""
        return [s for s in self.spans if s.track == track]

    def busy_seconds(self, track: str,
                     name: Optional[str] = None) -> float:
        """Total closed-span seconds on *track* (optionally one name).

        Only top-level spans count (children are contained in their
        parents), so the result is the track's occupied time, not a
        double-counted sum.
        """
        return sum(s.duration for s in self.spans
                   if s.track == track and s.finished
                   and s.parent is None
                   and (name is None or s.name == name))

    @property
    def extent(self) -> float:
        """High-water timestamp: end of the recorded timeline."""
        return self._high_water


class NullTracer(Tracer):
    """A tracer that records nothing, ever.

    Useful as an always-safe default for code that wants to call
    tracer methods unconditionally; :meth:`enable` is refused so the
    null instance can be shared globally without risk of one caller
    turning on recording for everyone.
    """

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def enable(self) -> None:
        """Refused: the null tracer can never record."""
        raise ObservabilityError(
            "NullTracer cannot be enabled; create a Tracer instead")


#: Shared do-nothing tracer instance.
NULL_TRACER = NullTracer()
