"""repro.obs — end-to-end tracing and metrics for the simulation.

The observability layer the paper's analysis implicitly relied on:
span-based tracing stamped with simulated time (:mod:`tracer`), a
metrics registry with counters / gauges / percentile histograms
(:mod:`metrics`), the :class:`ObsSession` bundle that threads through
the whole stack (:mod:`session`), a Chrome/Perfetto ``trace_event``
exporter (:mod:`perfetto`) and a per-device utilisation report
(:mod:`report`).

Typical use::

    from repro.obs import ObsSession, utilisation_report, \
        write_chrome_trace
    from repro.ncsw import NCSw

    session = ObsSession()
    fw = NCSw(obs=session)
    ...
    run = fw.run("synthetic", "vpu8", batch_size=8)
    print(utilisation_report(session, run.wall_seconds))
    write_chrome_trace(session, "trace.json")  # open in ui.perfetto.dev

Everything is zero-cost when no session is attached: instrumentation
points guard on ``env.obs is None`` and benchmark numbers are
byte-identical with tracing off.
"""

from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    TracerClock,
)
from repro.obs.session import ObsSession
from repro.obs.perfetto import to_chrome_trace, write_chrome_trace
from repro.obs.report import (
    device_failures,
    device_utilisation,
    link_occupancy,
    rank_activity,
    serving_activity,
    utilisation_report,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "TracerClock",
    "ObsSession",
    "to_chrome_trace",
    "write_chrome_trace",
    "device_failures",
    "device_utilisation",
    "link_occupancy",
    "rank_activity",
    "serving_activity",
    "utilisation_report",
]
