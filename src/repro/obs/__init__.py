"""repro.obs — end-to-end tracing and metrics for the simulation.

The observability layer the paper's analysis implicitly relied on:
span-based tracing stamped with simulated time (:mod:`tracer`), a
metrics registry with counters / gauges / percentile histograms
(:mod:`metrics`), the :class:`ObsSession` bundle that threads through
the whole stack (:mod:`session`), per-request causal traces with
waterfalls and critical paths (:mod:`reqtrace`), windowed time-series
aggregation and a JSONL metrics dump/loader (:mod:`timeline`),
SLO burn-rate and anomaly detection (:mod:`alerts`), a Chrome/Perfetto
``trace_event`` exporter with request flow events (:mod:`perfetto`)
and a per-device utilisation report (:mod:`report`).

Typical use::

    from repro.obs import ObsSession, utilisation_report, \
        write_chrome_trace
    from repro.ncsw import NCSw

    session = ObsSession()
    fw = NCSw(obs=session)
    ...
    run = fw.run("synthetic", "vpu8", batch_size=8)
    print(utilisation_report(session, run.wall_seconds))
    write_chrome_trace(session, "trace.json")  # open in ui.perfetto.dev

Everything is zero-cost when no session is attached: instrumentation
points guard on ``env.obs is None`` and benchmark numbers are
byte-identical with tracing off.
"""

from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    TracerClock,
)
from repro.obs.session import ObsSession
from repro.obs.reqtrace import (
    Hop,
    RequestTrace,
    RequestTracer,
    TraceContext,
    render_waterfall,
)
from repro.obs.timeline import (
    TimelineRecorder,
    load_metrics_jsonl,
    render_timeline,
    timeline_rows,
    write_metrics_jsonl,
)
from repro.obs.alerts import (
    Alert,
    BurnRatePolicy,
    burn_rate_alerts,
    dead_rank_alerts,
    default_policy,
    flapping_alerts,
    outcomes_from_traces,
    queue_slope_alerts,
    render_alerts,
    request_outcomes,
    serve_alerts,
)
from repro.obs.perfetto import to_chrome_trace, write_chrome_trace
from repro.obs.report import (
    dead_ranks,
    device_failures,
    device_utilisation,
    link_occupancy,
    rank_activity,
    serving_activity,
    utilisation_report,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "TracerClock",
    "ObsSession",
    "TraceContext",
    "Hop",
    "RequestTrace",
    "RequestTracer",
    "render_waterfall",
    "TimelineRecorder",
    "timeline_rows",
    "render_timeline",
    "write_metrics_jsonl",
    "load_metrics_jsonl",
    "Alert",
    "BurnRatePolicy",
    "default_policy",
    "request_outcomes",
    "outcomes_from_traces",
    "burn_rate_alerts",
    "queue_slope_alerts",
    "dead_rank_alerts",
    "flapping_alerts",
    "serve_alerts",
    "render_alerts",
    "to_chrome_trace",
    "write_chrome_trace",
    "dead_ranks",
    "device_failures",
    "device_utilisation",
    "link_occupancy",
    "rank_activity",
    "serving_activity",
    "utilisation_report",
]
