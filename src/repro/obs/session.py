"""The observability session: one tracer + metrics + power probes.

An :class:`ObsSession` is the object a user threads through the stack
(``NCSw(obs=session)``, ``fig6a_throughput_per_subset(obs=session)``,
``--trace`` on the CLI).  Attaching it to a simulation
:class:`~repro.sim.core.Environment` plants it at ``env.obs``, where
every instrumented layer — the DES kernel's process hooks, the USB
topology, the NCS device model, the NCAPI handles, the NCSw
schedulers — picks it up with a single ``is None`` check.  When no
session is attached (the default), that check is the *entire*
overhead, so benchmark numbers are unaffected.

The session outlives individual environments: experiment drivers
create a fresh ``Environment`` per run, and re-attaching shifts the
tracer's epoch so successive runs concatenate on one timeline.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs.metrics import MetricsRegistry, TracerClock
from repro.obs.reqtrace import RequestTracer
from repro.obs.timeline import TimelineRecorder
from repro.obs.tracer import Tracer
from repro.sim.monitor import Monitor


class ObsSession:
    """Bundle of tracer, metrics, timeline, request traces and power
    probes.

    ``sample_every=k`` thins request-scoped tracing to every k-th
    request id; aggregate metrics and spans are unaffected.
    """

    def __init__(self, enabled: bool = True,
                 sample_every: int = 1) -> None:
        self.tracer = Tracer(enabled=enabled)
        self.clock = TracerClock(self.tracer.now)
        #: Timestamped event log behind counters and histograms —
        #: what the windowed timeline and burn-rate alerts read.
        self.timeline = TimelineRecorder()
        self.metrics = MetricsRegistry(self.clock,
                                       timeline=self.timeline)
        #: Per-request causal hop traces (see repro.obs.reqtrace).
        self.reqtrace = RequestTracer(self.tracer,
                                      sample_every=sample_every)
        self._power: dict[str, Monitor] = {}
        self._proc_started = self.metrics.counter(
            "sim.processes_started")
        self._proc_finished = self.metrics.counter(
            "sim.processes_finished")
        self._live = self.metrics.gauge("sim.live_processes")

    # -- lifecycle -------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether the session records anything."""
        return self.tracer.enabled

    def enable(self) -> None:
        """Resume recording."""
        self.tracer.enable()

    def disable(self) -> None:
        """Pause recording (instrumented layers still see the session
        if it remains attached; re-attach after toggling to drop even
        the attribute checks)."""
        self.tracer.disable()

    def attach(self, env: Any) -> Any:
        """Bind the session to *env* and plant it at ``env.obs``.

        Returns *env* for chaining.  A disabled session leaves
        ``env.obs`` as ``None`` so the instrumented code paths stay on
        their zero-cost branch.
        """
        self.tracer.bind(env)
        env.obs = self if self.enabled else None
        return env

    # -- power probes -----------------------------------------------------
    def power_monitor(self, device_id: str) -> Monitor:
        """Per-device power signal (W), created on first use.

        Backed by a session-lifetime
        :class:`~repro.sim.monitor.Monitor` on the tracer clock, so
        ``integral()`` yields energy in Joules across every attached
        run.
        """
        if device_id not in self._power:
            self._power[device_id] = Monitor(
                self.clock, name=f"{device_id}.power")
        return self._power[device_id]

    def power_monitors(self) -> dict[str, Monitor]:
        """All per-device power monitors, keyed by device id."""
        return dict(self._power)

    def energy_joules(self, device_id: str,
                      until: Optional[float] = None) -> float:
        """Energy integral of one device's power signal."""
        if device_id not in self._power:
            return 0.0
        return self._power[device_id].integral(until)

    # -- DES kernel hooks ---------------------------------------------------
    def process_started(self, process: Any) -> None:
        """Called by the kernel when a simulation process spawns."""
        self._proc_started.inc()
        self._live.set(self._live.last + 1)

    def process_finished(self, process: Any) -> None:
        """Called by the kernel when a simulation process terminates."""
        self._proc_finished.inc()
        self._live.set(self._live.last - 1)
