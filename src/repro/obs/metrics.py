"""Metrics primitives: counters, gauges and histograms.

Counters accumulate monotonically (frames dropped, processes
started); gauges sample a piecewise-constant signal against the
simulated clock and reuse :class:`~repro.sim.monitor.Monitor` for the
time-weighted statistics (queue-depth time-averages, power → energy
integrals); histograms keep raw observations and report percentiles
(p50/p95/p99 latency).

A :class:`MetricsRegistry` is a get-or-create namespace for all
three, owned by an :class:`~repro.obs.session.ObsSession`.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

import numpy as np

from repro.errors import ObservabilityError
from repro.sim.monitor import Monitor


class TracerClock:
    """Environment-shaped shim exposing a clock callable as ``.now``.

    Lets session-lifetime :class:`~repro.sim.monitor.Monitor`
    instances keep working across the short-lived simulation
    environments the experiment drivers create per run.
    """

    def __init__(self, now_fn: Callable[[], float]) -> None:
        self._now_fn = now_fn

    @property
    def now(self) -> float:
        """Current timestamp from the wrapped clock callable."""
        return self._now_fn()


class Counter:
    """Monotonically increasing count.

    When the owning registry carries a timeline recorder, every
    increment is also logged as a timestamped event so windowed rates
    can be recovered after the run.
    """

    def __init__(self, name: str, clock=None, timeline=None) -> None:
        self.name = name
        self.value = 0.0
        self._clock = clock
        self._timeline = timeline

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r}: negative increment {amount}")
        self.value += amount
        if self._timeline is not None:
            self._timeline.record_inc(self.name, self._clock.now,
                                      amount)

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """Sampled piecewise-constant signal (e.g. queue depth).

    Samples are stamped with the owning session's clock; the
    time-weighted statistics delegate to the underlying
    :class:`~repro.sim.monitor.Monitor`.
    """

    def __init__(self, name: str, clock: TracerClock) -> None:
        self.name = name
        self._monitor = Monitor(clock, name=name)

    def set(self, value: float) -> None:
        """Record a new value effective from the current timestamp."""
        self._monitor.record(value)

    @property
    def last(self) -> float:
        """Most recently set value (0.0 before the first sample)."""
        return self._monitor.last

    @property
    def samples(self) -> list[tuple[float, float]]:
        """All ``(time, value)`` samples, in record order."""
        return list(zip(self._monitor.times, self._monitor.values))

    def time_average(self, until: Optional[float] = None) -> float:
        """Time-weighted mean of the signal (see ``Monitor``)."""
        return self._monitor.time_average(until)

    def integral(self, until: Optional[float] = None) -> float:
        """Time integral of the signal (see ``Monitor``)."""
        return self._monitor.integral(until)

    def maximum(self) -> float:
        """Largest sampled value."""
        return self._monitor.maximum()

    def __len__(self) -> int:
        return len(self._monitor)

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.last}>"


class HistogramSnapshot:
    """Frozen copy of a histogram's observations at one instant.

    Supports the same read-side queries as :class:`Histogram` but
    never changes afterwards, so two snapshots bracket a window.
    """

    def __init__(self, name: str, observations: tuple[float, ...]) -> None:
        self.name = name
        self.observations = observations

    @property
    def count(self) -> int:
        """Number of observations in the snapshot."""
        return len(self.observations)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the snapshot's observations."""
        if not self.observations:
            raise ObservabilityError(
                f"snapshot of {self.name!r} has no observations")
        return float(np.mean(self.observations))

    def percentile(self, q: float) -> float:
        """Observation percentile, ``q`` in [0, 100]."""
        if not self.observations:
            raise ObservabilityError(
                f"snapshot of {self.name!r} has no observations")
        return float(np.percentile(self.observations, q))

    def __repr__(self) -> str:
        return f"<HistogramSnapshot {self.name} n={self.count}>"


class Histogram:
    """Raw-observation histogram with percentile queries.

    Cumulative by default: observations accumulate for the life of
    the session.  For steady-state measurement windows, ``snapshot()``
    freezes the current contents and ``reset()`` discards them — e.g.
    reset at the end of a warm-up transient so the percentiles
    describe only the steady state.
    """

    def __init__(self, name: str, clock=None, timeline=None) -> None:
        self.name = name
        self.observations: list[float] = []
        self._clock = clock
        self._timeline = timeline

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.observations.append(float(value))
        if self._timeline is not None:
            self._timeline.record_value(self.name, self._clock.now,
                                        float(value))

    def snapshot(self) -> HistogramSnapshot:
        """Frozen copy of the observations recorded so far."""
        return HistogramSnapshot(self.name, tuple(self.observations))

    def reset(self) -> HistogramSnapshot:
        """Discard all observations, returning a snapshot of what was
        dropped (so a caller can still report the warm-up window)."""
        snap = self.snapshot()
        self.observations.clear()
        return snap

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self.observations)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations."""
        self._require_data()
        return float(np.mean(self.observations))

    def percentile(self, q: float) -> float:
        """Observation percentile, ``q`` in [0, 100]."""
        self._require_data()
        return float(np.percentile(self.observations, q))

    @property
    def p50(self) -> float:
        """Median observation."""
        return self.percentile(50)

    @property
    def p95(self) -> float:
        """95th-percentile observation."""
        return self.percentile(95)

    @property
    def p99(self) -> float:
        """99th-percentile observation."""
        return self.percentile(99)

    def _require_data(self) -> None:
        if not self.observations:
            raise ObservabilityError(
                f"histogram {self.name!r} has no observations")

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count}>"


class MetricsRegistry:
    """Get-or-create namespace of counters, gauges and histograms."""

    def __init__(self, clock: TracerClock, timeline=None) -> None:
        self._clock = clock
        #: Optional :class:`~repro.obs.timeline.TimelineRecorder`
        #: receiving timestamped counter/histogram events.
        self._timeline = timeline
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called *name*, created on first use."""
        if name not in self._counters:
            self._check_free(name, self._counters)
            self._counters[name] = Counter(name, self._clock,
                                           self._timeline)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """The gauge called *name*, created on first use."""
        if name not in self._gauges:
            self._check_free(name, self._gauges)
            self._gauges[name] = Gauge(name, self._clock)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        """The histogram called *name*, created on first use."""
        if name not in self._histograms:
            self._check_free(name, self._histograms)
            self._histograms[name] = Histogram(name, self._clock,
                                               self._timeline)
        return self._histograms[name]

    def _check_free(self, name: str, target: dict) -> None:
        """Refuse one name registered as two different metric kinds."""
        for kind, table in (("counter", self._counters),
                            ("gauge", self._gauges),
                            ("histogram", self._histograms)):
            if table is not target and name in table:
                raise ObservabilityError(
                    f"metric name {name!r} already registered as a "
                    f"{kind}")

    def counters(self) -> Iterator[Counter]:
        """All counters, in creation order."""
        return iter(self._counters.values())

    def gauges(self) -> Iterator[Gauge]:
        """All gauges, in creation order."""
        return iter(self._gauges.values())

    def histograms(self) -> Iterator[Histogram]:
        """All histograms, in creation order."""
        return iter(self._histograms.values())
