"""Plain-text utilisation report.

Answers the question the aggregate numbers cannot: *where did the
time go*?  Per device: how long the SHAVE array was executing (busy),
how long its USB transfers took, how long it sat idle, and how much
energy it drew (power-monitor integral).  Per link: occupancy — the
shared-hub contention the paper calls the "small penalty ... due to
the data transfers".  Plus every gauge's time-average (queue depths),
every counter, and every histogram's p50/p95/p99.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.obs.session import ObsSession

#: Span name the NCS device model uses for on-device execution.
INFERENCE_SPAN = "inference"
#: Span name the USB topology uses for link-holding transfers.
TRANSFER_SPAN = "usb_transfer"
#: Track suffix for the host-side NCAPI call spans of a device.
HOST_TRACK_SUFFIX = "/host"
#: Instant-event name the NCS device model emits when a stick dies.
FAILURE_MARK = "device_failed"
#: Instant-event name the cluster frontend emits when a rank dies.
HOST_KILLED_MARK = "host_killed"


def dead_ranks(session: ObsSession) -> dict[int, float]:
    """Ranks killed mid-run, mapped to their death time.

    Read from the ``host_killed`` instants the cluster frontend
    records; empty for runs without host deaths.
    """
    deaths: dict[int, float] = {}
    for mark in sorted(session.tracer.by_name(HOST_KILLED_MARK),
                       key=lambda s: (s.start, s.track)):
        rank = mark.args.get("rank")
        if rank is not None and int(rank) not in deaths:
            deaths[int(rank)] = mark.start
    return deaths


def device_utilisation(session: ObsSession,
                       wall_seconds: Optional[float] = None
                       ) -> dict[str, dict[str, float]]:
    """Per-device utilisation table as plain data.

    Keys are device track names; each value maps ``inferences``,
    ``busy_seconds``, ``busy_fraction``, ``io_seconds``,
    ``transfer_seconds``, ``idle_fraction`` and ``energy_joules``.
    ``wall_seconds`` defaults to the trace extent.
    """
    tracer = session.tracer
    wall = wall_seconds if wall_seconds else tracer.extent
    table: dict[str, dict[str, float]] = {}
    for track in tracer.tracks():
        spans = [s for s in tracer.by_track(track)
                 if s.name == INFERENCE_SPAN]
        if not spans:
            continue
        busy = sum(s.duration for s in spans if s.finished)
        transfer = sum(
            s.duration for s in tracer.by_name(TRANSFER_SPAN)
            if s.finished and s.args.get("device") == track)
        io = tracer.busy_seconds(track + HOST_TRACK_SUFFIX)
        table[track] = {
            "inferences": float(len(spans)),
            "busy_seconds": busy,
            "busy_fraction": busy / wall if wall > 0 else 0.0,
            "io_seconds": io,
            "transfer_seconds": transfer,
            "idle_fraction": (1.0 - busy / wall) if wall > 0 else 0.0,
            "energy_joules": session.energy_joules(track),
        }
    return table


def device_failures(session: ObsSession
                    ) -> list[dict[str, object]]:
    """Device deaths recorded in the trace, in time order.

    Each entry maps ``device``, ``time``, ``kind`` and ``detail``,
    taken from the ``device_failed`` instants the NCS device model
    emits when a stick is written off.
    """
    tracer = session.tracer
    marks = sorted(tracer.by_name(FAILURE_MARK),
                   key=lambda s: (s.start, s.track))
    return [{"device": s.track,
             "time": s.start,
             "kind": s.args.get("kind", ""),
             "detail": s.args.get("detail", "")}
            for s in marks]


#: Serving-layer counters in display order (the rest follow sorted).
_SERVE_COUNTER_ORDER = ("serve.offered", "serve.completed",
                        "serve.shed", "serve.rejected",
                        "serve.timed_out", "serve.abandoned",
                        "serve.batches", "serve.redirects")


def serving_activity(session: ObsSession) -> dict[str, float]:
    """Serving-layer (``serve.*``) counters, in display order.

    Empty when no :class:`~repro.serve.server.InferenceServer` run was
    recorded in this session.
    """
    values = {c.name: c.value for c in session.metrics.counters()
              if c.name.startswith("serve.") and c.value}
    ordered = {name: values.pop(name)
               for name in _SERVE_COUNTER_ORDER if name in values}
    ordered.update(sorted(values.items()))
    return ordered


#: Counter pattern of a cluster host rank (``rank<N>.<metric>``).
_RANK_COUNTER_RE = re.compile(r"^rank(\d+)\.(.+)$")


def rank_activity(session: ObsSession
                  ) -> dict[str, dict[str, float]]:
    """Per-rank serving counters of a cluster run, rank order.

    Keys are ``rank<N>`` track names; each value maps the rank's
    counter suffixes (``completed``, ``timed_out``, ...) to values.
    Empty when no :class:`~repro.cluster.server.ClusterServer` run was
    recorded in this session.
    """
    table: dict[int, dict[str, float]] = {}
    for counter in session.metrics.counters():
        match = _RANK_COUNTER_RE.match(counter.name)
        if match is None or not counter.value:
            continue
        rank = int(match.group(1))
        table.setdefault(rank, {})[match.group(2)] = counter.value
    return {f"rank{rank}": dict(sorted(table[rank].items()))
            for rank in sorted(table)}


def link_occupancy(session: ObsSession,
                   wall_seconds: Optional[float] = None
                   ) -> dict[str, float]:
    """Per-USB-link busy fraction over the wall-clock window."""
    tracer = session.tracer
    wall = wall_seconds if wall_seconds else tracer.extent
    table: dict[str, float] = {}
    for track in tracer.tracks():
        if not track.startswith("usb:"):
            continue
        busy = tracer.busy_seconds(track)
        table[track] = busy / wall if wall > 0 else 0.0
    return table


def utilisation_report(session: ObsSession,
                       wall_seconds: Optional[float] = None) -> str:
    """Render the full human-readable utilisation report."""
    tracer = session.tracer
    wall = wall_seconds if wall_seconds else tracer.extent
    lines = [
        "utilisation report",
        f"  spans recorded : {len(tracer)}",
        f"  wall window    : {wall * 1000:.1f} ms",
    ]

    devices = device_utilisation(session, wall)
    if devices:
        lines.append("")
        lines.append(
            f"  {'device':<10} {'inf':>5} {'busy ms':>9} {'busy%':>7} "
            f"{'io ms':>8} {'xfer ms':>8} {'idle%':>7} {'energy J':>9}")
        for name in sorted(devices):
            d = devices[name]
            lines.append(
                f"  {name:<10} {int(d['inferences']):>5} "
                f"{d['busy_seconds'] * 1000:>9.1f} "
                f"{d['busy_fraction']:>7.1%} "
                f"{d['io_seconds'] * 1000:>8.1f} "
                f"{d['transfer_seconds'] * 1000:>8.1f} "
                f"{d['idle_fraction']:>7.1%} "
                f"{d['energy_joules']:>9.3f}")

    failures = device_failures(session)
    if failures:
        lines.append("")
        lines.append(
            f"  {'dead device':<12} {'at ms':>9} {'kind':>8}  detail")
        for f in failures:
            lines.append(
                f"  {f['device']:<12} {f['time'] * 1000:>9.3f} "
                f"{f['kind']:>8}  {f['detail']}")

    serving = serving_activity(session)
    if serving:
        lines.append("")
        lines.append(f"  {'serving':<28} {'requests':>10}")
        for name, value in serving.items():
            lines.append(f"  {name:<28} {value:>10.0f}")

    ranks = rank_activity(session)
    deaths = dead_ranks(session)
    if ranks or deaths:
        # A rank killed before it resolved anything has no non-zero
        # counters; list it anyway so a dead host never silently
        # disappears from the report.
        for rank in deaths:
            ranks.setdefault(f"rank{rank}", {})
        lines.append("")
        lines.append(f"  {'per-rank serving':<28} {'requests':>10}")
        for rank in sorted(ranks,
                           key=lambda r: int(r.removeprefix("rank"))):
            rank_no = int(rank.removeprefix("rank"))
            if rank_no in deaths:
                lines.append(
                    f"  {rank} DEAD (killed @ "
                    f"{deaths[rank_no] * 1000:.1f} ms)")
            for name, value in ranks[rank].items():
                lines.append(
                    f"  {rank + '.' + name:<28} {value:>10.0f}")

    links = link_occupancy(session, wall)
    if links:
        lines.append("")
        lines.append(f"  {'usb link':<14} {'occupancy':>9}")
        for name in sorted(links):
            lines.append(f"  {name:<14} {links[name]:>9.1%}")

    # Sorted by name, not creation order: metric creation order shifts
    # with event interleaving (e.g. which host died first), and the
    # report must render identically for identical runs regardless.
    gauges = sorted((g for g in session.metrics.gauges() if len(g)),
                    key=lambda g: g.name)
    if gauges:
        lines.append("")
        lines.append(f"  {'gauge':<28} {'last':>8} {'avg':>8} "
                     f"{'max':>8}")
        for g in gauges:
            lines.append(
                f"  {g.name:<28} {g.last:>8.2f} "
                f"{g.time_average():>8.2f} {g.maximum():>8.2f}")

    counters = sorted(
        (c for c in session.metrics.counters() if c.value),
        key=lambda c: c.name)
    if counters:
        lines.append("")
        lines.append(f"  {'counter':<28} {'value':>10}")
        for c in counters:
            lines.append(f"  {c.name:<28} {c.value:>10.0f}")

    histograms = sorted(
        (h for h in session.metrics.histograms() if h.count),
        key=lambda h: h.name)
    if histograms:
        lines.append("")
        lines.append(f"  {'histogram':<24} {'n':>6} {'p50 ms':>9} "
                     f"{'p95 ms':>9} {'p99 ms':>9}")
        for h in histograms:
            lines.append(
                f"  {h.name:<24} {h.count:>6} {h.p50 * 1000:>9.2f} "
                f"{h.p95 * 1000:>9.2f} {h.p99 * 1000:>9.2f}")

    return "\n".join(lines)
