"""NCSw — the Neural Compute Stick Wrapper framework (paper §III).

The paper's own software contribution: a small inference framework
that connects pluggable input *sources* to pluggable *target devices*
(Fig. 3), with a parallel multi-VPU implementation that spawns one
host thread per NCS device, loads inputs round-robin and overlaps the
USB transfers with on-device execution (Fig. 4).

This package reproduces that design on the simulation substrate:

* :mod:`sources` — ``SourceImage`` hierarchy: ``ImageFolder``,
  ``MPIStream``, ``SyntheticSource``;
* :mod:`targets` — ``TargetDevice`` hierarchy: ``IntelCPU``,
  ``NvGPU``, ``IntelVPU`` (multi-device);
* :mod:`scheduler` — the per-device worker processes with static
  round-robin assignment and double-buffered load/get;
* :mod:`framework` — the ``NCSw`` orchestrator wiring sources to
  targets (including device groups) and running the simulation;
* :mod:`results` — per-inference records and run-level aggregation;
* :mod:`faults` — seeded device-failure schedules (``FaultPlan``) and
  the degraded-mode accounting types for fault-tolerant runs.
"""

from repro.ncsw.sources import (
    SourceImage,
    ImageFolder,
    DiskImageFolder,
    MPIStream,
    SyntheticSource,
    WorkItem,
)
from repro.ncsw.targets import TargetDevice, IntelCPU, NvGPU, IntelVPU
from repro.ncsw.scheduler import MultiVPUScheduler
from repro.ncsw.framework import NCSw
from repro.ncsw.pipeline import (
    ADMISSION_POLICIES,
    PipelineResult,
    StreamingPipeline,
)
from repro.ncsw.results import InferenceRecord, RunResult
from repro.ncsw.faults import (
    DeviceFault,
    FailureEvent,
    FaultPlan,
    FaultStats,
)

__all__ = [
    "SourceImage",
    "ImageFolder",
    "DiskImageFolder",
    "MPIStream",
    "SyntheticSource",
    "WorkItem",
    "TargetDevice",
    "IntelCPU",
    "NvGPU",
    "IntelVPU",
    "MultiVPUScheduler",
    "NCSw",
    "StreamingPipeline",
    "PipelineResult",
    "ADMISSION_POLICIES",
    "InferenceRecord",
    "RunResult",
    "DeviceFault",
    "FailureEvent",
    "FaultPlan",
    "FaultStats",
]
