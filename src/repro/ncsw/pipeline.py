"""Real-time streaming inference pipeline.

The VPU's original habitat is the "edge" — a camera producing frames
at a fixed rate that must be classified live (paper §II-A).  This
module runs that scenario on the simulator: a frame source ticking at
``fps``, a bounded dispatch queue with a drop-newest policy (a live
pipeline skips frames rather than falling behind), and the multi-VPU
worker pool.  Results report sustained throughput, drop rate and
end-to-end latency percentiles — the numbers an edge deployment is
actually judged on, complementing the paper's batch-throughput view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

import numpy as np

from repro.errors import DeviceTimeout, FrameworkError
from repro.ncs.ncapi import GraphHandle
from repro.ncsw.faults import FailureEvent
from repro.ncsw.scheduler import FAILOVER_ERRORS
from repro.sim.core import Environment, Event
from repro.sim.resources import Store


@dataclass
class FrameRecord:
    """One frame's journey through the pipeline."""

    frame_id: int
    arrived_at: float
    completed_at: Optional[float] = None

    @property
    def latency(self) -> Optional[float]:
        """Arrival-to-completion latency, or None if still in flight."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.arrived_at


@dataclass
class PipelineResult:
    """Outcome of a streaming run."""

    frames_offered: int
    frames_processed: int
    frames_dropped: int
    wall_seconds: float
    latencies: list[float] = field(default_factory=list)
    #: Frames stranded by device failures: accepted into the queue but
    #: never classified because no worker survived to take them.
    frames_abandoned: int = 0
    #: Device failures observed during the run (fault-tolerant mode).
    failures: list[FailureEvent] = field(default_factory=list)
    #: Frames drained off a failed device and retried on a survivor.
    frames_reassigned: int = 0

    def __post_init__(self) -> None:
        # Every offered frame must be accounted for exactly once —
        # classified, dropped at the queue, or abandoned to a failure.
        accounted = (self.frames_processed + self.frames_dropped
                     + self.frames_abandoned)
        if accounted != self.frames_offered:
            raise FrameworkError(
                f"frame accounting broken: {self.frames_processed} "
                f"processed + {self.frames_dropped} dropped + "
                f"{self.frames_abandoned} abandoned != "
                f"{self.frames_offered} offered")
        if len(self.latencies) != self.frames_processed:
            raise FrameworkError(
                f"{self.frames_processed} frames processed but "
                f"{len(self.latencies)} latencies recorded")

    @property
    def sustained_fps(self) -> float:
        """Frames actually processed per second of wall time."""
        if self.wall_seconds <= 0:
            raise FrameworkError("run has no elapsed time")
        return self.frames_processed / self.wall_seconds

    @property
    def drop_rate(self) -> float:
        """Fraction of offered frames skipped by the live queue."""
        if self.frames_offered == 0:
            return 0.0
        return self.frames_dropped / self.frames_offered

    @property
    def degraded(self) -> bool:
        """True when any device failed or any frame was abandoned."""
        return bool(self.failures) or self.frames_abandoned > 0

    def latency_percentile(self, q: float) -> float:
        """End-to-end latency percentile (q in [0, 100]).

        Raises :class:`ValueError` when no frame completed — latency
        percentiles are undefined for such a run.
        """
        if not self.latencies:
            raise ValueError(
                "no completed frames: latency percentiles are "
                "undefined for this run")
        return float(np.percentile(self.latencies, q))

    @property
    def mean_latency(self) -> float:
        """Mean end-to-end latency over the completed frames."""
        if not self.latencies:
            raise ValueError(
                "no completed frames: mean latency is undefined for "
                "this run")
        return float(np.mean(self.latencies))

    def summary(self) -> str:
        """One-line human-readable summary of the run.

        Degrades gracefully when every frame was dropped: no latency
        percentiles are printed instead of raising.
        """
        head = (f"{self.frames_processed}/{self.frames_offered} frames "
                f"({self.drop_rate:.1%} dropped)")
        if not self.latencies:
            return head + ", no completed frames"
        return (head + ", "
                f"{self.sustained_fps:.1f} fps sustained, "
                f"latency p50 {self.latency_percentile(50) * 1000:.1f} "
                f"ms / p95 {self.latency_percentile(95) * 1000:.1f} "
                f"ms / p99 {self.latency_percentile(99) * 1000:.1f} "
                f"ms, mean {self.mean_latency * 1000:.1f} ms")


#: Reject the incoming frame when the queue is full (a live pipeline
#: skips frames rather than falling behind) — the historical default.
REJECT_NEWEST = "reject-newest"
#: Evict the oldest queued frame to admit the incoming one (stale
#: frames are worthless to a live classifier anyway).
SHED_OLDEST = "shed-oldest"
#: Stall the camera until the queue drains (backpressure: nothing is
#: lost, but the source falls behind its own clock).
BLOCK = "block"

ADMISSION_POLICIES = (REJECT_NEWEST, SHED_OLDEST, BLOCK)


class StreamingPipeline:
    """Camera -> bounded queue -> multi-stick worker pool."""

    def __init__(self, env: Environment, graphs: list[GraphHandle],
                 fps: float, queue_depth: int = 4,
                 fault_tolerant: bool = False,
                 call_timeout: Optional[float] = None,
                 admission: str = REJECT_NEWEST) -> None:
        if not graphs:
            raise FrameworkError("pipeline needs at least one device")
        if fps <= 0:
            raise FrameworkError(f"fps must be positive, got {fps}")
        if queue_depth < 1:
            raise FrameworkError("queue_depth must be >= 1")
        if call_timeout is not None and call_timeout <= 0:
            raise FrameworkError(
                f"call_timeout must be positive, got {call_timeout}")
        if admission not in ADMISSION_POLICIES:
            raise FrameworkError(
                f"unknown admission policy {admission!r}; one of "
                f"{ADMISSION_POLICIES}")
        self.env = env
        self.graphs = graphs
        self.fps = fps
        self.queue_depth = queue_depth
        self.fault_tolerant = bool(fault_tolerant) or (
            call_timeout is not None)
        self.call_timeout = call_timeout
        self.admission = admission
        self._queue = Store(env, capacity=float("inf"))
        self._queued = 0
        self._space: Optional[Event] = None
        self._alive_workers = len(graphs)
        self.records: list[FrameRecord] = []
        self.dropped = 0
        self.failures: list[FailureEvent] = []
        self.reassigned = 0

    def run(self, num_frames: int) -> Event:
        """Stream *num_frames*; event value is a PipelineResult."""
        if num_frames < 1:
            raise FrameworkError("num_frames must be >= 1")
        return self.env.process(self._run(num_frames))

    def _run(self, num_frames: int
             ) -> Generator[Event, None, PipelineResult]:
        t0 = self.env.now
        producer = self.env.process(self._producer(num_frames))
        workers = [self.env.process(
                       self._worker_ft(g, idx) if self.fault_tolerant
                       else self._worker(g))
                   for idx, g in enumerate(self.graphs)]
        yield producer
        # Poison-pill each worker after the source dries up.
        for _ in workers:
            yield self._queue.put(None)
        yield self.env.all_of(workers)
        # Frames still queued once every worker has exited (all sticks
        # dead) were accepted but never classified: abandoned.
        abandoned = sum(1 for f in self._queue.items if f is not None)
        self._queue.items.clear()
        latencies = [r.latency for r in self.records
                     if r.latency is not None]
        return PipelineResult(
            frames_offered=num_frames,
            frames_processed=len(latencies),
            frames_dropped=self.dropped,
            wall_seconds=self.env.now - t0,
            latencies=latencies,
            frames_abandoned=abandoned,
            failures=list(self.failures),
            frames_reassigned=self.reassigned,
        )

    def _producer(self, num_frames: int
                  ) -> Generator[Event, None, None]:
        interval = 1.0 / self.fps
        obs = self.env.obs
        for frame_id in range(num_frames):
            if obs is not None:
                obs.metrics.counter("pipeline.frames_offered").inc()
            if self.admission == BLOCK:
                # Backpressure: stall the camera until a worker frees
                # a slot.  Frames are stamped with their production
                # time, so the stall shows up as queueing latency.
                # If every device has died the wait would never end;
                # admit anyway and let the drain count them abandoned.
                while (self._queued >= self.queue_depth
                       and self._alive_workers > 0):
                    self._space = self.env.event()
                    yield self._space
                frame = FrameRecord(frame_id, arrived_at=self.env.now)
            elif self._queued >= self.queue_depth:
                if self.admission == SHED_OLDEST:
                    if self._shed_oldest() and obs is not None:
                        obs.metrics.counter(
                            "pipeline.frames_dropped").inc()
                    frame = FrameRecord(frame_id,
                                        arrived_at=self.env.now)
                else:
                    # Live pipeline: skip the frame rather than stall
                    # the camera (reject-newest policy).
                    self.dropped += 1
                    if obs is not None:
                        obs.metrics.counter(
                            "pipeline.frames_dropped").inc()
                    frame = None
            else:
                frame = FrameRecord(frame_id, arrived_at=self.env.now)
            if frame is not None:
                self._queued += 1
                yield self._queue.put(frame)
                if obs is not None:
                    obs.metrics.gauge("pipeline.queue_depth").set(
                        self._queued)
            yield self.env.timeout(interval)

    def _shed_oldest(self) -> bool:
        """Evict the oldest still-queued frame; True when one was."""
        for i, item in enumerate(self._queue.items):
            if item is not None:
                del self._queue.items[i]
                self._queued -= 1
                self.dropped += 1
                return True
        # Queue counted as full but every frame is already in a
        # worker's hands (get dispatched, decrement still pending):
        # nothing to shed.
        return False

    def _notify_space(self) -> None:
        """Wake a producer blocked on a full queue, if any."""
        if self._space is not None and not self._space.triggered:
            self._space.succeed()
            self._space = None

    def _worker(self, graph: GraphHandle
                ) -> Generator[Event, None, None]:
        obs = self.env.obs
        while True:
            frame = yield self._queue.get()
            if frame is None:
                self._alive_workers -= 1
                return
            self._queued -= 1
            self._notify_space()
            if obs is not None:
                obs.metrics.gauge("pipeline.queue_depth").set(
                    self._queued)
            yield graph.load_tensor(None, user=frame)
            _, got = yield graph.get_result()
            got.completed_at = self.env.now
            self.records.append(got)
            if obs is not None:
                obs.metrics.histogram(
                    "pipeline.latency_seconds").observe(
                        got.completed_at - got.arrived_at)

    def _worker_ft(self, graph: GraphHandle, device_index: int
                   ) -> Generator[Event, None, None]:
        # Same loop as ``_worker`` but the stick dying mid-frame kills
        # only this worker: the in-flight frame jumps back to the head
        # of the queue for a survivor, and the failure is recorded.
        obs = self.env.obs
        while True:
            frame = yield self._queue.get()
            if frame is None:
                self._alive_workers -= 1
                return
            self._queued -= 1
            self._notify_space()
            if obs is not None:
                obs.metrics.gauge("pipeline.queue_depth").set(
                    self._queued)
            try:
                yield graph.load_tensor(None, user=frame,
                                        timeout=self.call_timeout)
                _, got = yield graph.get_result(
                    timeout=self.call_timeout)
            except FAILOVER_ERRORS as exc:
                if isinstance(exc, DeviceTimeout) \
                        and not graph.device.dead:
                    graph.fail_device("hang", str(exc))
                device = graph.device
                self._queued += 1
                self._queue.put_front(frame)
                self.reassigned += 1
                self.failures.append(FailureEvent(
                    device=device.device_id,
                    worker=f"vpu{device_index}",
                    time=(device.failure_time
                          if device.failure_time is not None
                          else self.env.now),
                    kind=device.failure_kind or "death",
                    detail=str(exc), requeued=1))
                if obs is not None:
                    obs.metrics.counter(
                        "pipeline.device_failures").inc()
                self._alive_workers -= 1
                if self._alive_workers == 0:
                    # Last device gone: release a blocked producer so
                    # the run can drain and account the leftovers.
                    self._notify_space()
                return
            got.completed_at = self.env.now
            self.records.append(got)
            if obs is not None:
                obs.metrics.histogram(
                    "pipeline.latency_seconds").observe(
                        got.completed_at - got.arrived_at)
