"""Real-time streaming inference pipeline.

The VPU's original habitat is the "edge" — a camera producing frames
at a fixed rate that must be classified live (paper §II-A).  This
module runs that scenario on the simulator: a frame source ticking at
``fps``, a bounded dispatch queue with a drop-newest policy (a live
pipeline skips frames rather than falling behind), and the multi-VPU
worker pool.  Results report sustained throughput, drop rate and
end-to-end latency percentiles — the numbers an edge deployment is
actually judged on, complementing the paper's batch-throughput view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

import numpy as np

from repro.errors import FrameworkError
from repro.ncs.ncapi import GraphHandle
from repro.sim.core import Environment, Event
from repro.sim.resources import Store


@dataclass
class FrameRecord:
    """One frame's journey through the pipeline."""

    frame_id: int
    arrived_at: float
    completed_at: Optional[float] = None

    @property
    def latency(self) -> Optional[float]:
        """Arrival-to-completion latency, or None if still in flight."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.arrived_at


@dataclass
class PipelineResult:
    """Outcome of a streaming run."""

    frames_offered: int
    frames_processed: int
    frames_dropped: int
    wall_seconds: float
    latencies: list[float] = field(default_factory=list)

    @property
    def sustained_fps(self) -> float:
        """Frames actually processed per second of wall time."""
        if self.wall_seconds <= 0:
            raise FrameworkError("run has no elapsed time")
        return self.frames_processed / self.wall_seconds

    @property
    def drop_rate(self) -> float:
        """Fraction of offered frames skipped by the live queue."""
        if self.frames_offered == 0:
            return 0.0
        return self.frames_dropped / self.frames_offered

    def latency_percentile(self, q: float) -> float:
        """End-to-end latency percentile (q in [0, 100])."""
        if not self.latencies:
            raise FrameworkError("no completed frames")
        return float(np.percentile(self.latencies, q))

    def summary(self) -> str:
        """One-line human-readable summary of the run.

        Degrades gracefully when every frame was dropped: no latency
        percentiles are printed instead of raising.
        """
        head = (f"{self.frames_processed}/{self.frames_offered} frames "
                f"({self.drop_rate:.1%} dropped)")
        if not self.latencies:
            return head + ", no completed frames"
        return (head + ", "
                f"{self.sustained_fps:.1f} fps sustained, "
                f"latency p50 {self.latency_percentile(50) * 1000:.1f} "
                f"ms / p95 {self.latency_percentile(95) * 1000:.1f} ms")


class StreamingPipeline:
    """Camera -> bounded queue -> multi-stick worker pool."""

    def __init__(self, env: Environment, graphs: list[GraphHandle],
                 fps: float, queue_depth: int = 4) -> None:
        if not graphs:
            raise FrameworkError("pipeline needs at least one device")
        if fps <= 0:
            raise FrameworkError(f"fps must be positive, got {fps}")
        if queue_depth < 1:
            raise FrameworkError("queue_depth must be >= 1")
        self.env = env
        self.graphs = graphs
        self.fps = fps
        self.queue_depth = queue_depth
        self._queue = Store(env, capacity=float("inf"))
        self._queued = 0
        self.records: list[FrameRecord] = []
        self.dropped = 0

    def run(self, num_frames: int) -> Event:
        """Stream *num_frames*; event value is a PipelineResult."""
        if num_frames < 1:
            raise FrameworkError("num_frames must be >= 1")
        return self.env.process(self._run(num_frames))

    def _run(self, num_frames: int
             ) -> Generator[Event, None, PipelineResult]:
        t0 = self.env.now
        producer = self.env.process(self._producer(num_frames))
        workers = [self.env.process(self._worker(g))
                   for g in self.graphs]
        yield producer
        # Poison-pill each worker after the source dries up.
        for _ in workers:
            yield self._queue.put(None)
        yield self.env.all_of(workers)
        latencies = [r.latency for r in self.records
                     if r.latency is not None]
        return PipelineResult(
            frames_offered=num_frames,
            frames_processed=len(latencies),
            frames_dropped=self.dropped,
            wall_seconds=self.env.now - t0,
            latencies=latencies,
        )

    def _producer(self, num_frames: int
                  ) -> Generator[Event, None, None]:
        interval = 1.0 / self.fps
        obs = self.env.obs
        for frame_id in range(num_frames):
            if self._queued >= self.queue_depth:
                # Live pipeline: skip the frame rather than stall the
                # camera (drop-newest policy).
                self.dropped += 1
                if obs is not None:
                    obs.metrics.counter("pipeline.frames_dropped").inc()
            else:
                self._queued += 1
                yield self._queue.put(
                    FrameRecord(frame_id, arrived_at=self.env.now))
                if obs is not None:
                    obs.metrics.gauge("pipeline.queue_depth").set(
                        self._queued)
            if obs is not None:
                obs.metrics.counter("pipeline.frames_offered").inc()
            yield self.env.timeout(interval)

    def _worker(self, graph: GraphHandle
                ) -> Generator[Event, None, None]:
        obs = self.env.obs
        while True:
            frame = yield self._queue.get()
            if frame is None:
                return
            self._queued -= 1
            if obs is not None:
                obs.metrics.gauge("pipeline.queue_depth").set(
                    self._queued)
            yield graph.load_tensor(None, user=frame)
            _, got = yield graph.get_result()
            got.completed_at = self.env.now
            self.records.append(got)
            if obs is not None:
                obs.metrics.histogram(
                    "pipeline.latency_seconds").observe(
                        got.completed_at - got.arrived_at)
