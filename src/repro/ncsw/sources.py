"""Input sources (the ``SourceImage`` side of the paper's Fig. 3).

A source is a re-iterable stream of :class:`WorkItem` objects.  The
framework iterates a fresh pass for every run, so sources must yield
the same items on every iteration (all our generators are
deterministic, so this comes for free).
"""

from __future__ import annotations

import collections
import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

import numpy as np

from repro.data.decode import JPEGDecoder
from repro.data.ilsvrc import ILSVRCValidation
from repro.data.preprocess import Preprocessor
from repro.errors import FrameworkError


@dataclass(frozen=True)
class WorkItem:
    """One unit of inference work flowing through the framework."""

    index: int
    image_id: int
    label: Optional[int]
    tensor: Optional[np.ndarray] = field(repr=False, default=None)
    #: Causal trace context carried down from the serving layer (see
    #: :mod:`repro.obs.reqtrace`); None for batch-campaign work.
    trace: Optional[Any] = field(repr=False, default=None, compare=False)


class SourceImage:
    """Abstract base of input sources."""

    name = "source"

    def __iter__(self) -> Iterator[WorkItem]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class ImageFolder(SourceImage):
    """A directory of validation images (one ILSVRC subset).

    Decodes through the simulated JPEG decoder (whose time the paper
    excludes from results — available via :attr:`decoder`) and
    preprocesses to the network's input geometry.
    """

    name = "image_folder"

    def __init__(self, dataset: ILSVRCValidation, subset: int,
                 preprocessor: Preprocessor,
                 limit: Optional[int] = None) -> None:
        self.dataset = dataset
        self.subset = subset
        self.preprocessor = preprocessor
        self.limit = limit
        self.decoder = JPEGDecoder(dataset.synthesizer)
        self._ids = list(dataset.subset_ids(subset))
        if limit is not None:
            if limit < 1:
                raise FrameworkError(f"limit must be >= 1, got {limit}")
            self._ids = self._ids[:limit]

    def __len__(self) -> int:
        return len(self._ids)

    def __iter__(self) -> Iterator[WorkItem]:
        for index, image_id in enumerate(self._ids):
            record = self.dataset.record(image_id)
            pixels = self.decoder.decode(record.label, record.image_id)
            tensor = self.preprocessor(pixels)
            yield WorkItem(index=index, image_id=image_id,
                           label=record.label, tensor=tensor)


class DiskImageFolder(SourceImage):
    """A real directory of PPM validation images on disk.

    Reads the layout :meth:`repro.data.ilsvrc.ILSVRCValidation.
    export_to_dir` writes: ``*.ppm`` files plus
    ``val_ground_truth.txt``.  This is the closest analogue to the
    paper's harness walking 50 000 JPEGs with OpenCV.
    """

    name = "disk_image_folder"

    def __init__(self, directory, preprocessor: Preprocessor,
                 limit: Optional[int] = None) -> None:
        from pathlib import Path

        self.directory = Path(directory)
        self.preprocessor = preprocessor
        truth_path = self.directory / "val_ground_truth.txt"
        if not truth_path.exists():
            raise FrameworkError(
                f"{self.directory}: no val_ground_truth.txt — not an "
                f"exported validation directory")
        self._entries: list[tuple[int, int, str]] = []
        for line in truth_path.read_text().splitlines():
            if not line.strip():
                continue
            image_id, label, _wnid = line.split()
            self._entries.append((int(image_id), int(label),
                                  f"ILSVRC2012_val_{int(image_id):08d}"
                                  f".ppm"))
        if limit is not None:
            if limit < 1:
                raise FrameworkError(f"limit must be >= 1, got {limit}")
            self._entries = self._entries[:limit]
        if not self._entries:
            raise FrameworkError(f"{self.directory}: empty ground truth")

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[WorkItem]:
        from repro.data.ppm import read_ppm

        for index, (image_id, label, filename) in enumerate(
                self._entries):
            pixels = read_ppm(self.directory / filename)
            yield WorkItem(index=index, image_id=image_id, label=label,
                           tensor=self.preprocessor(pixels))


class SyntheticSource(SourceImage):
    """*count* timing-only items (no pixels, no labels).

    Used by the performance benchmarks, where the devices run in
    non-functional mode and only the simulated clock matters.

    An optional *payload* hook attaches a tensor to each item, for
    scenarios that want per-item data variation (e.g. functional-mode
    serving smoke tests) without a dataset.  Determinism contract:
    the hook is called as ``payload(rng, index)`` with a NumPy
    ``Generator`` seeded from ``(seed, index)`` only, so item *i* gets
    the same tensor on every pass, regardless of how many items were
    drawn before it or whether a previous iteration stopped early.
    The framework re-iterates sources per run and relies on this.
    """

    name = "synthetic"

    def __init__(self, count: int,
                 payload: Optional[
                     Callable[[np.random.Generator, int],
                              np.ndarray]] = None,
                 seed: int = 0) -> None:
        if count < 1:
            raise FrameworkError(f"count must be >= 1, got {count}")
        self.count = count
        self.payload = payload
        self.seed = seed

    def _item_rng(self, index: int) -> np.random.Generator:
        digest = hashlib.sha256(
            f"synthetic:{self.seed}:{index}".encode()).digest()
        return np.random.default_rng(
            int.from_bytes(digest[:8], "little"))

    def __len__(self) -> int:
        return self.count

    def __iter__(self) -> Iterator[WorkItem]:
        for index in range(self.count):
            tensor = None
            if self.payload is not None:
                tensor = self.payload(self._item_rng(index), index)
            yield WorkItem(index=index, image_id=index + 1, label=None,
                           tensor=tensor)


class MPIStream(SourceImage):
    """An MPI-style streamed source (paper Fig. 3's ``MPIStream``).

    Models the data-streaming MPI extension the authors cite [32]: a
    producer rank posts messages (tagged payloads) into a stream; the
    consumer drains them in order.  In-process here — the point is the
    pluggable-source architecture, not distribution.
    """

    name = "mpi_stream"
    _EOS = object()  #: end-of-stream sentinel

    def __init__(self, source_rank: int = 0) -> None:
        self.source_rank = source_rank
        self._queue: collections.deque = collections.deque()
        self._closed = False
        self._count = 0

    # -- producer API -----------------------------------------------------
    def send(self, tensor: Optional[np.ndarray],
             label: Optional[int] = None, tag: Any = None) -> None:
        """Post one image into the stream (like ``MPI_Send`` to it)."""
        if self._closed:
            raise FrameworkError("stream is closed")
        self._count += 1
        self._queue.append((self._count, tensor, label, tag))

    def close(self) -> None:
        """Mark end-of-stream; iteration stops after the last message."""
        self._closed = True
        self._queue.append(self._EOS)

    # -- consumer API ---------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[WorkItem]:
        if not self._closed:
            raise FrameworkError(
                "MPIStream must be closed before iteration (all "
                "messages posted)")
        index = 0
        for entry in list(self._queue):
            if entry is self._EOS:
                break
            image_id, tensor, label, _tag = entry
            yield WorkItem(index=index, image_id=image_id, label=label,
                           tensor=tensor)
            index += 1
