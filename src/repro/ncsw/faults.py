"""Seeded device-fault injection for the NCSw stack.

The paper's scaling runs assume every stick stays healthy for the
whole campaign; at fleet scale device death is the common case.  A
:class:`FaultPlan` is a deterministic schedule of device-level
failures injected on the simulated clock:

* ``death`` — hot-unplug / hardware death: the stick drops off the
  USB bus and every in-flight call fails with ``DeviceLost``;
* ``hang`` — firmware hang: the stick goes silent (``get_result``
  never returns) and only a per-call timeout can detect it;
* ``thermal`` — over-temperature shutdown through the
  :mod:`repro.ncs.thermal` model (latched, like the real firmware);
* ``busy`` — a transient window in which submissions are rejected
  with ``DeviceBusy`` (retried with backoff by the scheduler).

Plans are built explicitly (:meth:`FaultPlan.kill`) or drawn from a
seed (:meth:`FaultPlan.seeded`); the same seed always produces the
same schedule, so every chaos run is reproducible byte for byte.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator, Iterable, Sequence

import numpy as np

from repro.errors import FrameworkError
from repro.sim.core import Environment, Event

if TYPE_CHECKING:
    from repro.ncs.device import NCSDevice

#: Fault kinds a plan may schedule.
DEATH = "death"
HANG = "hang"
THERMAL = "thermal"
BUSY = "busy"

KINDS = (DEATH, HANG, THERMAL, BUSY)


def _seeded_rng(seed: int, salt: str = "") -> np.random.Generator:
    """Stable RNG from a seed (sha256, not Python's salted hash)."""
    digest = hashlib.sha256(
        f"fault-plan:{seed}:{salt}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


@dataclass(frozen=True)
class DeviceFault:
    """One scheduled failure of one device."""

    device_index: int
    at: float
    kind: str = DEATH
    #: Busy-window length; only meaningful for ``kind == "busy"``.
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise FrameworkError(
                f"unknown fault kind {self.kind!r}; one of {KINDS}")
        if self.device_index < 0:
            raise FrameworkError("device_index must be >= 0")
        if self.at < 0:
            raise FrameworkError("fault time must be >= 0")
        if self.duration < 0:
            raise FrameworkError("busy duration must be >= 0")


@dataclass(frozen=True)
class FailureEvent:
    """One device failure as observed by the scheduler."""

    device: str  #: bus id of the failed stick (e.g. ``ncs3``)
    worker: str  #: scheduler worker name (e.g. ``vpu3``)
    time: float  #: simulated time the failure was declared
    kind: str  #: ``death`` / ``hang`` / ``thermal`` / ``busy``
    detail: str = ""
    requeued: int = 0  #: work items drained back for reassignment
    #: What failed: ``device`` for a single stick, ``host`` when a
    #: whole cluster rank (frontend's view of one serving host) died.
    scope: str = "device"


@dataclass
class FaultStats:
    """Degraded-mode accounting accumulated over a run."""

    events: list[FailureEvent] = field(default_factory=list)
    reassigned: int = 0
    abandoned: int = 0

    @property
    def dead_devices(self) -> tuple[str, ...]:
        """Unique failed-device ids, in failure order."""
        seen: dict[str, None] = {}
        for e in self.events:
            seen.setdefault(e.device, None)
        return tuple(seen)

    def merge(self, other: "FaultStats") -> None:
        """Fold another batch's accounting into this one."""
        self.events.extend(other.events)
        self.reassigned += other.reassigned
        self.abandoned += other.abandoned


class FaultPlan:
    """A deterministic schedule of device faults.

    Arm the plan on a set of devices with :meth:`arm`; each fault
    fires at its simulated time through an injector process.  Faults
    aimed past the end of the run simply never fire.
    """

    def __init__(self, faults: Iterable[DeviceFault] = ()) -> None:
        self.faults = sorted(faults,
                             key=lambda f: (f.at, f.device_index))
        #: Injections actually performed: (kind, device_id, time).
        self.injected: list[tuple[str, str, float]] = []

    def __len__(self) -> int:
        return len(self.faults)

    # -- builders -------------------------------------------------------
    @classmethod
    def kill(cls, device_index: int, at: float,
             kind: str = DEATH, duration: float = 0.0) -> "FaultPlan":
        """Single-fault plan: fail one stick at one time."""
        return cls([DeviceFault(device_index=device_index, at=at,
                                kind=kind, duration=duration)])

    @classmethod
    def seeded(cls, seed: int, num_devices: int, horizon: float,
               n_faults: int = 1,
               kinds: Sequence[str] = (DEATH,),
               start: float = 0.0,
               busy_duration: float = 0.0) -> "FaultPlan":
        """Draw a random plan deterministically from *seed*.

        Picks *n_faults* distinct devices, each failing at a uniform
        time in ``[start, start + horizon)`` with a kind drawn from
        *kinds*.  Same seed → same plan, always.
        """
        if num_devices < 1:
            raise FrameworkError("need at least one device")
        if n_faults < 0 or n_faults > num_devices:
            raise FrameworkError(
                f"n_faults must be in [0, {num_devices}]")
        if horizon <= 0:
            raise FrameworkError("horizon must be positive")
        for kind in kinds:
            if kind not in KINDS:
                raise FrameworkError(f"unknown fault kind {kind!r}")
        rng = _seeded_rng(seed)
        victims = rng.choice(num_devices, size=n_faults, replace=False)
        faults = []
        for index in victims:
            at = start + float(rng.random()) * horizon
            kind = kinds[int(rng.integers(len(kinds)))]
            faults.append(DeviceFault(
                device_index=int(index), at=at, kind=kind,
                duration=busy_duration if kind == BUSY else 0.0))
        return cls(faults)

    # -- arming ---------------------------------------------------------
    def arm(self, env: Environment,
            devices: Sequence["NCSDevice"]) -> list[Event]:
        """Schedule every fault against *devices* on *env*'s clock.

        Also arms the lost-device hooks on every device so in-flight
        calls can be aborted the instant a stick dies.  Returns the
        injector process events (mostly for tests).
        """
        for fault in self.faults:
            if fault.device_index >= len(devices):
                raise FrameworkError(
                    f"fault targets device {fault.device_index} but "
                    f"only {len(devices)} devices are armed")
        for device in devices:
            device.enable_fault_hooks()
        return [env.process(self._inject(env, devices[f.device_index],
                                         f))
                for f in self.faults]

    def _inject(self, env: Environment, device: "NCSDevice",
                fault: DeviceFault) -> Generator[Event, None, None]:
        if fault.at > env.now:
            yield env.timeout(fault.at - env.now)
        if device.dead:
            return  # already gone; nothing left to break
        if fault.kind == DEATH:
            device.inject_death()
        elif fault.kind == HANG:
            device.inject_hang()
        elif fault.kind == THERMAL:
            device.inject_thermal_runaway()
        elif fault.kind == BUSY:
            device.inject_busy(fault.duration)
        self.injected.append((fault.kind, device.device_id, env.now))
