"""Multi-VPU scheduler — the paper's Fig. 4 execution timeline.

One worker process per NCS device (the "OpenMP thread" analogue),
static round-robin assignment of work items to devices, and
double-buffered ``load_tensor`` / ``get_result`` so the USB transfer of
item *k+1* overlaps the on-device execution of item *k* — exactly the
decoupled pattern Listing 1 demonstrates.

Two knobs exist for ablations:

* ``overlap=False`` serialises load -> get per item (quantifies what
  the Listing-1 overlap buys);
* ``dynamic=True`` replaces the paper's static round-robin ("We follow
  a simple static scheduling (i.e., round-robin)", §III) with a
  pull-based shared queue — workers take the next item when free,
  which matters once per-inference latency varies (jitter, thermal
  throttling) and is pointless when it doesn't.

A third knob hardens the run against device failure:

* ``fault_tolerant=True`` (implied by a ``call_timeout``) makes every
  worker survive its stick dying mid-run: the device is written off
  in a :class:`~repro.ncs.health.HealthMonitor`, its in-flight and
  unstarted items drain back to a shared pool, and rescue rounds
  round-robin them over the survivors with bounded retry/backoff.
  ``call_timeout`` arms a per-call NCAPI deadline — the only way to
  detect a *hung* firmware, which fails no call and raises no error.

The default (non-fault-tolerant, no timeout) path schedules exactly
the same simulation events as it always did, so headline results stay
byte-identical whether or not this machinery exists.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, Optional

import numpy as np

from repro.errors import (DeviceBusy, DeviceClosed, DeviceLost,
                          DeviceTimeout, FrameworkError, ThermalShutdown,
                          USBError)
from repro.ncs.health import DEAD, HEALTHY, HealthMonitor
from repro.ncs.ncapi import GraphHandle
from repro.ncsw.faults import FailureEvent, FaultStats
from repro.ncsw.results import InferenceRecord
from repro.ncsw.sources import WorkItem
from repro.sim.core import Environment, Event
from repro.sim.resources import Store

#: Errors a fault-tolerant worker treats as "this device is gone":
#: lost/unplugged, thermally shut down, hung past its deadline,
#: persistently busy, closed under us, or the bus itself failing.
FAILOVER_ERRORS = (DeviceLost, DeviceTimeout, DeviceBusy, DeviceClosed,
                   USBError)


class MultiVPUScheduler:
    """Dispatches work items across multiple NCS graph handles."""

    def __init__(self, env: Environment,
                 graphs: list[GraphHandle],
                 overlap: bool = True,
                 dynamic: bool = False,
                 fault_tolerant: bool = False,
                 call_timeout: Optional[float] = None,
                 max_retries: int = 3,
                 retry_backoff_s: float = 1e-3) -> None:
        if not graphs:
            raise FrameworkError("scheduler needs at least one device")
        if call_timeout is not None and call_timeout <= 0:
            raise FrameworkError(
                f"call_timeout must be positive, got {call_timeout}")
        if max_retries < 0:
            raise FrameworkError("max_retries must be >= 0")
        if retry_backoff_s < 0:
            raise FrameworkError("retry_backoff_s must be >= 0")
        self.env = env
        self.graphs = graphs
        self.overlap = overlap
        self.dynamic = dynamic
        # A call deadline only makes sense with failover to act on it.
        self.fault_tolerant = bool(fault_tolerant) or (
            call_timeout is not None)
        self.call_timeout = call_timeout
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.records: list[InferenceRecord] = []
        # Degraded-mode accounting (stays empty on healthy runs).
        self.failures: list[FailureEvent] = []
        self.reassigned = 0
        self.abandoned: list[WorkItem] = []
        self.health: Optional[HealthMonitor] = (
            HealthMonitor(env) if self.fault_tolerant else None)
        self._dead: set[int] = set()  # graph indices out of rotation
        self._requeue: list[WorkItem] = []
        self._attempts: dict[int, int] = {}

    def run(self, items: list[WorkItem]) -> Event:
        """Process *items*; completes when every result is read."""
        return self.env.process(self._run(items))

    def fault_stats(self) -> FaultStats:
        """Degraded-mode accounting for this scheduler's run."""
        return FaultStats(events=list(self.failures),
                          reassigned=self.reassigned,
                          abandoned=len(self.abandoned))

    def _run(self, items: list[WorkItem]) -> Generator[Event, None, None]:
        if self.fault_tolerant:
            yield from self._run_ft(items)
            return
        if self.dynamic:
            yield from self._run_dynamic(items)
            return
        # Static round-robin: item i -> device (i mod n), as §III says.
        n = len(self.graphs)
        assignments: list[list[WorkItem]] = [[] for _ in range(n)]
        for i, item in enumerate(items):
            assignments[i % n].append(item)
        # Fork one worker per device (Fig. 4 step 1), join at the end
        # (step 5).
        workers = [self.env.process(self._worker(g, work, idx))
                   for idx, (g, work) in enumerate(
                       zip(self.graphs, assignments)) if work]
        if workers:
            yield self.env.all_of(workers)

    # -- dynamic (pull-based) variant ----------------------------------
    def _run_dynamic(self,
                     items: list[WorkItem]) -> Generator[Event, None, None]:
        obs = self.env.obs
        queue: Store = Store(self.env)
        for item in items:
            queue.put(item)
        if obs is not None:
            obs.metrics.gauge("scheduler.queue_depth").set(len(items))
        for _ in self.graphs:
            queue.put(None)  # poison pill per worker
        workers = [self.env.process(self._dynamic_worker(g, queue, idx))
                   for idx, g in enumerate(self.graphs)]
        yield self.env.all_of(workers)

    def _dynamic_worker(self, graph: GraphHandle, queue: Store,
                        device_index: int
                        ) -> Generator[Event, None, None]:
        device_name = f"vpu{device_index}"
        obs = self.env.obs
        while True:
            item = yield queue.get()
            if item is None:
                return
            if obs is not None:
                # Remaining real work (poison pills excluded).
                obs.metrics.gauge("scheduler.queue_depth").set(
                    sum(1 for i in queue.items if i is not None))
            t0 = self.env.now
            yield graph.load_tensor(item.tensor, user=item)
            result, got = yield graph.get_result()
            self._record(got, result, device_name, t0)

    def _worker(self, graph: GraphHandle, work: list[WorkItem],
                device_index: int) -> Generator[Event, None, None]:
        device_name = f"vpu{device_index}"
        if self.overlap:
            yield from self._worker_overlapped(graph, work, device_name)
        else:
            yield from self._worker_serial(graph, work, device_name)

    def _worker_overlapped(self, graph: GraphHandle,
                           work: list[WorkItem],
                           device_name: str
                           ) -> Generator[Event, None, None]:
        submit_times: dict[int, float] = {}
        pending: list[WorkItem] = []

        def _load(item: WorkItem):
            submit_times[item.index] = self.env.now
            return graph.load_tensor(item.tensor, user=item)

        # Prime the pipeline with the first tensor, then keep one
        # in flight: load k+1, collect k.
        yield _load(work[0])
        pending.append(work[0])
        for nxt in work[1:]:
            yield _load(nxt)
            pending.append(nxt)
            result, item = yield graph.get_result()
            pending.remove(item)
            self._record(item, result, device_name,
                         submit_times[item.index])
        while pending:
            result, item = yield graph.get_result()
            pending.remove(item)
            self._record(item, result, device_name,
                         submit_times[item.index])

    def _worker_serial(self, graph: GraphHandle, work: list[WorkItem],
                       device_name: str
                       ) -> Generator[Event, None, None]:
        for item in work:
            t0 = self.env.now
            yield graph.load_tensor(item.tensor, user=item)
            result, got = yield graph.get_result()
            self._record(got, result, device_name, t0)

    # -- fault-tolerant variants ----------------------------------------
    def _run_ft(self, items: list[WorkItem]
                ) -> Generator[Event, None, None]:
        # Devices dead before this batch (a kill in an earlier batch,
        # say) never enter the rotation and raise no fresh failure
        # event — they already had theirs.
        live: list[int] = []
        for idx, graph in enumerate(self.graphs):
            dead = graph.device.dead
            if self.health is not None:
                self.health.register(graph.device_id,
                                     DEAD if dead else HEALTHY)
            if dead:
                self._dead.add(idx)
            else:
                live.append(idx)
        if not live:
            self._abandon(items)
            return
        if self.dynamic:
            yield from self._run_dynamic_ft(items)
            return
        assignments: dict[int, list[WorkItem]] = {i: [] for i in live}
        for k, item in enumerate(items):
            assignments[live[k % len(live)]].append(item)
        workers = [self.env.process(self._worker_ft(
                       self.graphs[idx], work, idx))
                   for idx, work in assignments.items() if work]
        if workers:
            yield self.env.all_of(workers)
        yield from self._rescue_static()

    def _rescue_static(self) -> Generator[Event, None, None]:
        """Re-dispatch drained items over the survivors, in rounds."""
        round_no = 0
        while self._requeue:
            live = [idx for idx, g in enumerate(self.graphs)
                    if idx not in self._dead and not g.device.dead]
            if not live:
                self._abandon(self._requeue)
                self._requeue = []
                return
            batch = sorted(self._requeue, key=lambda it: it.index)
            self._requeue = []
            self.reassigned += len(batch)
            round_no += 1
            if self.retry_backoff_s > 0:
                yield self.env.timeout(self.retry_backoff_s * round_no)
            assignments = {i: [] for i in live}
            for k, item in enumerate(batch):
                assignments[live[k % len(live)]].append(item)
            workers = [self.env.process(self._worker_ft(
                           self.graphs[idx], work, idx))
                       for idx, work in assignments.items() if work]
            if workers:
                yield self.env.all_of(workers)

    def _worker_ft(self, graph: GraphHandle, work: list[WorkItem],
                   device_index: int) -> Generator[Event, None, None]:
        device_name = f"vpu{device_index}"
        todo: Deque[WorkItem] = deque(work)
        pending: list[WorkItem] = []
        try:
            if self.overlap:
                yield from self._worker_overlapped_ft(
                    graph, todo, pending, device_name)
            else:
                yield from self._worker_serial_ft(
                    graph, todo, device_name)
        except FAILOVER_ERRORS as exc:
            self._handle_failure(graph, device_index, exc,
                                 pending + list(todo))

    def _worker_overlapped_ft(self, graph: GraphHandle,
                              todo: Deque[WorkItem],
                              pending: list[WorkItem],
                              device_name: str
                              ) -> Generator[Event, None, None]:
        # Same double-buffered shape as ``_worker_overlapped`` but the
        # caller owns ``todo``/``pending``: on failure, everything
        # submitted-but-uncollected plus everything unstarted is
        # exactly ``pending + todo``.
        submit_times: dict[int, float] = {}
        first = todo[0]
        submit_times[first.index] = self.env.now
        yield from self._load_ft(graph, first, device_name)
        pending.append(todo.popleft())
        while todo:
            nxt = todo[0]
            submit_times[nxt.index] = self.env.now
            yield from self._load_ft(graph, nxt, device_name)
            pending.append(todo.popleft())
            result, item = yield graph.get_result(
                timeout=self.call_timeout)
            pending.remove(item)
            self._record(item, result, device_name,
                         submit_times[item.index])
        while pending:
            result, item = yield graph.get_result(
                timeout=self.call_timeout)
            pending.remove(item)
            self._record(item, result, device_name,
                         submit_times[item.index])

    def _worker_serial_ft(self, graph: GraphHandle,
                          todo: Deque[WorkItem],
                          device_name: str
                          ) -> Generator[Event, None, None]:
        while todo:
            item = todo[0]  # popped only once the result is in hand
            t0 = self.env.now
            yield from self._load_ft(graph, item, device_name)
            result, got = yield graph.get_result(
                timeout=self.call_timeout)
            todo.popleft()
            self._record(got, result, device_name, t0)

    def _load_ft(self, graph: GraphHandle, item: WorkItem,
                 device_name: str) -> Generator[Event, None, None]:
        """``load_tensor`` with bounded retry on transient busyness."""
        attempt = 0
        while True:
            try:
                yield graph.load_tensor(item.tensor, user=item,
                                        timeout=self.call_timeout)
                return
            except DeviceBusy:
                attempt += 1
                if attempt > self.max_retries:
                    raise  # persistently busy: give up on the device
                obs = self.env.obs
                if obs is not None:
                    obs.metrics.counter("scheduler.busy_retries").inc()
                yield self.env.timeout(self.retry_backoff_s * attempt)

    # -- dynamic fault-tolerant variant ---------------------------------
    def _run_dynamic_ft(self, items: list[WorkItem]
                        ) -> Generator[Event, None, None]:
        # No poison pills: a drained-then-refilled queue (failover
        # putting items back) must not leave work stranded behind a
        # pill.  Workers exit when the queue is empty; rescue rounds
        # re-fork survivors while requeued items remain.
        obs = self.env.obs
        queue: Store = Store(self.env)
        for item in items:
            queue.put(item)
        if obs is not None:
            obs.metrics.gauge("scheduler.queue_depth").set(len(items))
        round_no = 0
        while True:
            live = [idx for idx, g in enumerate(self.graphs)
                    if idx not in self._dead and not g.device.dead]
            if not live or not queue.items:
                break
            workers = [self.env.process(self._dynamic_worker_ft(
                           self.graphs[idx], queue, idx))
                       for idx in live]
            yield self.env.all_of(workers)
            if queue.items:  # a failover requeued work: back off, retry
                round_no += 1
                if self.retry_backoff_s > 0:
                    yield self.env.timeout(
                        self.retry_backoff_s * round_no)
        if queue.items:  # no survivors left for the remainder
            self._abandon(list(queue.items))
            queue.items.clear()

    def _dynamic_worker_ft(self, graph: GraphHandle, queue: Store,
                           device_index: int
                           ) -> Generator[Event, None, None]:
        device_name = f"vpu{device_index}"
        obs = self.env.obs
        while queue.items:
            item = yield queue.get()
            if obs is not None:
                obs.metrics.gauge("scheduler.queue_depth").set(
                    len(queue.items))
            t0 = self.env.now
            try:
                yield from self._load_ft(graph, item, device_name)
                result, got = yield graph.get_result(
                    timeout=self.call_timeout)
            except FAILOVER_ERRORS as exc:
                self._handle_failure(graph, device_index, exc, [item],
                                     queue=queue)
                return
            self._record(got, result, device_name, t0)

    # -- failure handling -----------------------------------------------
    def _handle_failure(self, graph: GraphHandle, device_index: int,
                        exc: Exception, unfinished: list[WorkItem],
                        queue: Optional[Store] = None) -> None:
        """Write a device off and drain its work back for reassignment."""
        kind = self._kind_of(exc)
        if isinstance(exc, DeviceTimeout) and not graph.device.dead:
            # Deadline expired with no device-side failure on record:
            # the firmware is presumed hung; kill it from the host.
            graph.fail_device("hang", str(exc))
        device = graph.device
        self._dead.add(device_index)
        if self.health is not None:
            self.health.mark_dead(device.device_id, reason=str(exc))
        requeued = 0
        for item in unfinished:
            attempts = self._attempts.get(item.index, 0) + 1
            self._attempts[item.index] = attempts
            if attempts > self.max_retries:
                self.abandoned.append(item)
            elif queue is not None:
                queue.put_front(item)
                requeued += 1
            else:
                self._requeue.append(item)
                requeued += 1
        # Prefer the device's own record of what killed it and when —
        # e.g. a timeout detecting a death reports as the death.
        self.failures.append(FailureEvent(
            device=device.device_id,
            worker=f"vpu{device_index}",
            time=(device.failure_time if device.failure_time is not None
                  else self.env.now),
            kind=device.failure_kind or kind,
            detail=str(exc),
            requeued=requeued))
        obs = self.env.obs
        if obs is not None:
            obs.metrics.counter("scheduler.device_failures").inc()
            if requeued:
                obs.metrics.counter("scheduler.items_requeued").inc(
                    requeued)
            obs.tracer.instant("scheduler_failover", track="scheduler",
                               device=device.device_id,
                               kind=device.failure_kind or kind,
                               requeued=requeued)

    def _abandon(self, items: list[WorkItem]) -> None:
        self.abandoned.extend(items)
        obs = self.env.obs
        if obs is not None and items:
            obs.metrics.counter("scheduler.items_abandoned").inc(
                len(items))

    @staticmethod
    def _kind_of(exc: Exception) -> str:
        if isinstance(exc, ThermalShutdown):
            return "thermal"
        if isinstance(exc, DeviceTimeout):
            return "hang"
        if isinstance(exc, DeviceBusy):
            return "busy"
        return "death"

    def _record(self, item: WorkItem, result: Optional[np.ndarray],
                device: str, t_submit: float) -> None:
        predicted: Optional[int] = None
        confidence: Optional[float] = None
        topk: Optional[tuple[int, ...]] = None
        if result is not None and item.tensor is not None:
            flat = np.asarray(result, dtype=np.float32).ravel()
            predicted = int(flat.argmax())
            confidence = float(flat[predicted])
            k = min(5, flat.size)
            order = np.argpartition(flat, -k)[-k:]
            topk = tuple(int(i) for i in order[np.argsort(-flat[order])])
        self.records.append(InferenceRecord(
            index=item.index,
            image_id=item.image_id,
            label=item.label,
            predicted=predicted,
            confidence=confidence,
            device=device,
            t_submit=t_submit,
            t_complete=self.env.now,
            topk=topk,
        ))
        obs = self.env.obs
        if obs is not None and item.trace is not None:
            # Backdate the submit hop: _record runs at completion time
            # but the transfer started at t_submit.
            obs.reqtrace.hop(item.trace, "device_submit", track=device,
                             t=obs.tracer.timestamp(t_submit))
            obs.reqtrace.hop(item.trace, "device_done", track=device)
