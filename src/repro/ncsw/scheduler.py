"""Multi-VPU scheduler — the paper's Fig. 4 execution timeline.

One worker process per NCS device (the "OpenMP thread" analogue),
static round-robin assignment of work items to devices, and
double-buffered ``load_tensor`` / ``get_result`` so the USB transfer of
item *k+1* overlaps the on-device execution of item *k* — exactly the
decoupled pattern Listing 1 demonstrates.

Two knobs exist for ablations:

* ``overlap=False`` serialises load -> get per item (quantifies what
  the Listing-1 overlap buys);
* ``dynamic=True`` replaces the paper's static round-robin ("We follow
  a simple static scheduling (i.e., round-robin)", §III) with a
  pull-based shared queue — workers take the next item when free,
  which matters once per-inference latency varies (jitter, thermal
  throttling) and is pointless when it doesn't.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.errors import FrameworkError
from repro.ncs.ncapi import GraphHandle
from repro.ncsw.results import InferenceRecord
from repro.ncsw.sources import WorkItem
from repro.sim.core import Environment, Event
from repro.sim.resources import Store


class MultiVPUScheduler:
    """Dispatches work items across multiple NCS graph handles."""

    def __init__(self, env: Environment,
                 graphs: list[GraphHandle],
                 overlap: bool = True,
                 dynamic: bool = False) -> None:
        if not graphs:
            raise FrameworkError("scheduler needs at least one device")
        self.env = env
        self.graphs = graphs
        self.overlap = overlap
        self.dynamic = dynamic
        self.records: list[InferenceRecord] = []

    def run(self, items: list[WorkItem]) -> Event:
        """Process *items*; completes when every result is read."""
        return self.env.process(self._run(items))

    def _run(self, items: list[WorkItem]) -> Generator[Event, None, None]:
        if self.dynamic:
            yield from self._run_dynamic(items)
            return
        # Static round-robin: item i -> device (i mod n), as §III says.
        n = len(self.graphs)
        assignments: list[list[WorkItem]] = [[] for _ in range(n)]
        for i, item in enumerate(items):
            assignments[i % n].append(item)
        # Fork one worker per device (Fig. 4 step 1), join at the end
        # (step 5).
        workers = [self.env.process(self._worker(g, work, idx))
                   for idx, (g, work) in enumerate(
                       zip(self.graphs, assignments)) if work]
        if workers:
            yield self.env.all_of(workers)

    # -- dynamic (pull-based) variant ----------------------------------
    def _run_dynamic(self,
                     items: list[WorkItem]) -> Generator[Event, None, None]:
        obs = self.env.obs
        queue: Store = Store(self.env)
        for item in items:
            queue.put(item)
        if obs is not None:
            obs.metrics.gauge("scheduler.queue_depth").set(len(items))
        for _ in self.graphs:
            queue.put(None)  # poison pill per worker
        workers = [self.env.process(self._dynamic_worker(g, queue, idx))
                   for idx, g in enumerate(self.graphs)]
        yield self.env.all_of(workers)

    def _dynamic_worker(self, graph: GraphHandle, queue: Store,
                        device_index: int
                        ) -> Generator[Event, None, None]:
        device_name = f"vpu{device_index}"
        obs = self.env.obs
        while True:
            item = yield queue.get()
            if item is None:
                return
            if obs is not None:
                # Remaining real work (poison pills excluded).
                obs.metrics.gauge("scheduler.queue_depth").set(
                    sum(1 for i in queue.items if i is not None))
            t0 = self.env.now
            yield graph.load_tensor(item.tensor, user=item)
            result, got = yield graph.get_result()
            self._record(got, result, device_name, t0)

    def _worker(self, graph: GraphHandle, work: list[WorkItem],
                device_index: int) -> Generator[Event, None, None]:
        device_name = f"vpu{device_index}"
        if self.overlap:
            yield from self._worker_overlapped(graph, work, device_name)
        else:
            yield from self._worker_serial(graph, work, device_name)

    def _worker_overlapped(self, graph: GraphHandle,
                           work: list[WorkItem],
                           device_name: str
                           ) -> Generator[Event, None, None]:
        submit_times: dict[int, float] = {}
        pending: list[WorkItem] = []

        def _load(item: WorkItem):
            submit_times[item.index] = self.env.now
            return graph.load_tensor(item.tensor, user=item)

        # Prime the pipeline with the first tensor, then keep one
        # in flight: load k+1, collect k.
        yield _load(work[0])
        pending.append(work[0])
        for nxt in work[1:]:
            yield _load(nxt)
            pending.append(nxt)
            result, item = yield graph.get_result()
            pending.remove(item)
            self._record(item, result, device_name,
                         submit_times[item.index])
        while pending:
            result, item = yield graph.get_result()
            pending.remove(item)
            self._record(item, result, device_name,
                         submit_times[item.index])

    def _worker_serial(self, graph: GraphHandle, work: list[WorkItem],
                       device_name: str
                       ) -> Generator[Event, None, None]:
        for item in work:
            t0 = self.env.now
            yield graph.load_tensor(item.tensor, user=item)
            result, got = yield graph.get_result()
            self._record(got, result, device_name, t0)

    def _record(self, item: WorkItem, result: Optional[np.ndarray],
                device: str, t_submit: float) -> None:
        predicted: Optional[int] = None
        confidence: Optional[float] = None
        topk: Optional[tuple[int, ...]] = None
        if result is not None and item.tensor is not None:
            flat = np.asarray(result, dtype=np.float32).ravel()
            predicted = int(flat.argmax())
            confidence = float(flat[predicted])
            k = min(5, flat.size)
            order = np.argpartition(flat, -k)[-k:]
            topk = tuple(int(i) for i in order[np.argsort(-flat[order])])
        self.records.append(InferenceRecord(
            index=item.index,
            image_id=item.image_id,
            label=item.label,
            predicted=predicted,
            confidence=confidence,
            device=device,
            t_submit=t_submit,
            t_complete=self.env.now,
            topk=topk,
        ))
