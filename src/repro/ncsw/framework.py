"""The NCSw orchestrator.

Wires named sources to named targets, runs the whole thing inside a
fresh discrete-event simulation, and returns a
:class:`~repro.ncsw.results.RunResult`.  Device preparation (firmware
boot, graph allocation, framework warm-up) happens before the measured
window, mirroring the paper's methodology: decode time is excluded,
host<->device transfer time is included (§IV).

Targets may also be composed into *groups* — the paper's §III notes
that applications can send different input subsets to different device
groups concurrently; :meth:`NCSw.run_group` implements that split.
"""

from __future__ import annotations

import itertools
from typing import Generator, Optional

from repro.errors import FrameworkError
from repro.ncsw.results import RunResult
from repro.ncsw.sources import ImageFolder, SourceImage, WorkItem
from repro.ncsw.targets import TargetDevice
from repro.sim.core import Environment, Event


def _batched(items: list[WorkItem], size: int):
    it = iter(items)
    while True:
        chunk = list(itertools.islice(it, size))
        if not chunk:
            return
        yield chunk


class NCSw:
    """Framework facade: register sources/targets, then run."""

    def __init__(self) -> None:
        self._sources: dict[str, SourceImage] = {}
        self._targets: dict[str, TargetDevice] = {}

    # -- registration -----------------------------------------------------
    def add_source(self, name: str, source: SourceImage) -> None:
        """Register an input source under a unique name."""
        if name in self._sources:
            raise FrameworkError(f"duplicate source {name!r}")
        self._sources[name] = source

    def add_target(self, name: str, target: TargetDevice) -> None:
        """Register a target device under a unique name."""
        if name in self._targets:
            raise FrameworkError(f"duplicate target {name!r}")
        self._targets[name] = target

    def source(self, name: str) -> SourceImage:
        """Look up a registered source by name."""
        try:
            return self._sources[name]
        except KeyError:
            raise FrameworkError(f"unknown source {name!r}") from None

    def target(self, name: str) -> TargetDevice:
        """Look up a registered target by name."""
        try:
            return self._targets[name]
        except KeyError:
            raise FrameworkError(f"unknown target {name!r}") from None

    # -- single-target run -----------------------------------------------------
    def run(self, source_name: str, target_name: str, *,
            batch_size: int = 8,
            limit: Optional[int] = None) -> RunResult:
        """Stream a source through a target; returns the run result."""
        if batch_size < 1:
            raise FrameworkError(
                f"batch_size must be >= 1, got {batch_size}")
        source = self.source(source_name)
        target = self.target(target_name)
        items = list(itertools.islice(iter(source), limit))
        if not items:
            raise FrameworkError(f"source {source_name!r} is empty")

        env = Environment()
        result = RunResult(source=source_name, target=target_name,
                           batch_size=batch_size)

        def main() -> Generator[Event, None, None]:
            yield target.prepare(env)
            t0 = env.now
            for chunk in _batched(items, batch_size):
                records = yield target.process_batch(chunk)
                result.records.extend(records)
            result.wall_seconds = env.now - t0

        env.run(until=env.process(main()))
        if isinstance(source, ImageFolder):
            result.decode_seconds_excluded = source.decoder.stats.seconds
        return result

    # -- grouped run ---------------------------------------------------------------
    def run_group(self, source_name: str, target_names: list[str], *,
                  batch_size: int = 8,
                  limit: Optional[int] = None) -> dict[str, RunResult]:
        """Split one source across several targets, concurrently.

        Items are dealt round-robin across the groups; all groups run
        in the same simulated timeline (sharing nothing but the
        clock), and each gets its own :class:`RunResult`.
        """
        if not target_names:
            raise FrameworkError("run_group needs at least one target")
        source = self.source(source_name)
        targets = [self.target(n) for n in target_names]
        items = list(itertools.islice(iter(source), limit))
        if not items:
            raise FrameworkError(f"source {source_name!r} is empty")
        splits: list[list[WorkItem]] = [[] for _ in targets]
        for i, item in enumerate(items):
            splits[i % len(targets)].append(item)

        env = Environment()
        results = {name: RunResult(source=source_name, target=name,
                                   batch_size=batch_size)
                   for name in target_names}

        def group_main(target: TargetDevice, work: list[WorkItem],
                       result: RunResult) -> Generator[Event, None, None]:
            yield target.prepare(env)
            t0 = env.now
            for chunk in _batched(work, batch_size):
                records = yield target.process_batch(chunk)
                result.records.extend(records)
            result.wall_seconds = env.now - t0

        procs = [env.process(group_main(t, w, results[n]))
                 for t, w, n in zip(targets, splits, target_names) if w]
        env.run(until=env.all_of(procs))
        return results
