"""The NCSw orchestrator.

Wires named sources to named targets, runs the whole thing inside a
fresh discrete-event simulation, and returns a
:class:`~repro.ncsw.results.RunResult`.  Device preparation (firmware
boot, graph allocation, framework warm-up) happens before the measured
window, mirroring the paper's methodology: decode time is excluded,
host<->device transfer time is included (§IV).

Targets may also be composed into *groups* — the paper's §III notes
that applications can send different input subsets to different device
groups concurrently; :meth:`NCSw.run_group` implements that split.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Generator, Optional

from repro.errors import FrameworkError
from repro.ncsw.results import RunResult
from repro.ncsw.sources import ImageFolder, SourceImage, WorkItem
from repro.ncsw.targets import TargetDevice
from repro.sim.core import Environment, Event

if TYPE_CHECKING:
    from repro.obs.session import ObsSession


def _batched(items: list[WorkItem], size: int):
    it = iter(items)
    while True:
        chunk = list(itertools.islice(it, size))
        if not chunk:
            return
        yield chunk


class NCSw:
    """Framework facade: register sources/targets, then run.

    Pass an :class:`~repro.obs.session.ObsSession` as ``obs`` to
    record a span timeline and metrics across every run; the default
    (no session) adds zero overhead and changes no results.
    """

    def __init__(self, obs: Optional["ObsSession"] = None,
                 scheduler: Optional[str] = None) -> None:
        self._sources: dict[str, SourceImage] = {}
        self._targets: dict[str, TargetDevice] = {}
        #: Scheduler kernel ("heap"/"wheel") for run Environments;
        #: None defers to the REPRO_SIM_SCHEDULER env var.
        self.scheduler = scheduler
        self.obs = obs

    def _new_environment(self) -> Environment:
        env = Environment(scheduler=self.scheduler)
        if self.obs is not None:
            self.obs.attach(env)
        return env

    # -- registration -----------------------------------------------------
    def add_source(self, name: str, source: SourceImage) -> None:
        """Register an input source under a unique name."""
        if name in self._sources:
            raise FrameworkError(f"duplicate source {name!r}")
        self._sources[name] = source

    def add_target(self, name: str, target: TargetDevice) -> None:
        """Register a target device under a unique name."""
        if name in self._targets:
            raise FrameworkError(f"duplicate target {name!r}")
        self._targets[name] = target

    def source(self, name: str) -> SourceImage:
        """Look up a registered source by name."""
        try:
            return self._sources[name]
        except KeyError:
            raise FrameworkError(f"unknown source {name!r}") from None

    def target(self, name: str) -> TargetDevice:
        """Look up a registered target by name."""
        try:
            return self._targets[name]
        except KeyError:
            raise FrameworkError(f"unknown target {name!r}") from None

    # -- single-target run -----------------------------------------------------
    def run(self, source_name: str, target_name: str, *,
            batch_size: int = 8,
            limit: Optional[int] = None) -> RunResult:
        """Stream a source through a target; returns the run result."""
        if batch_size < 1:
            raise FrameworkError(
                f"batch_size must be >= 1, got {batch_size}")
        source = self.source(source_name)
        target = self.target(target_name)
        items = list(itertools.islice(iter(source), limit))
        if not items:
            raise FrameworkError(f"source {source_name!r} is empty")

        env = self._new_environment()
        obs = env.obs
        result = RunResult(source=source_name, target=target_name,
                           batch_size=batch_size)

        def main() -> Generator[Event, None, None]:
            prep = None
            if obs is not None:
                prep = obs.tracer.begin("prepare", track="host",
                                        target=target_name)
            yield target.prepare(env)
            root = None
            if obs is not None:
                obs.tracer.end(prep)
                root = obs.tracer.begin(
                    "run", track="host", source=source_name,
                    target=target_name, batch_size=batch_size,
                    images=len(items))
            t0 = env.now
            for i, chunk in enumerate(_batched(items, batch_size)):
                span = None
                if obs is not None:
                    span = obs.tracer.begin(
                        "process_batch", track="host", batch=i,
                        size=len(chunk))
                records = yield target.process_batch(chunk)
                if obs is not None:
                    obs.tracer.end(span)
                result.records.extend(records)
            result.wall_seconds = env.now - t0
            if obs is not None:
                obs.tracer.end(root)

        env.run(until=env.process(main()))
        if isinstance(source, ImageFolder):
            result.decode_seconds_excluded = source.decoder.stats.seconds
        self._fold_fault_stats(target, result)
        return result

    @staticmethod
    def _fold_fault_stats(target: TargetDevice,
                          result: RunResult) -> None:
        """Copy the target's degraded-mode accounting into the result."""
        stats = target.fault_stats()
        result.failures = list(stats.events)
        result.reassigned = stats.reassigned
        result.abandoned = stats.abandoned

    # -- grouped run ---------------------------------------------------------------
    def run_group(self, source_name: str, target_names: list[str], *,
                  batch_size: int = 8,
                  limit: Optional[int] = None) -> dict[str, RunResult]:
        """Split one source across several targets, concurrently.

        Items are dealt round-robin across the groups; all groups run
        in the same simulated timeline (sharing nothing but the
        clock), and each gets its own :class:`RunResult`.

        With more targets than items, some groups receive an empty
        split; their results are marked ``empty`` (zero wall time, no
        records) so they cannot be mistaken for measurements.
        """
        if not target_names:
            raise FrameworkError("run_group needs at least one target")
        source = self.source(source_name)
        targets = [self.target(n) for n in target_names]
        items = list(itertools.islice(iter(source), limit))
        if not items:
            raise FrameworkError(f"source {source_name!r} is empty")
        splits: list[list[WorkItem]] = [[] for _ in targets]
        for i, item in enumerate(items):
            splits[i % len(targets)].append(item)

        env = self._new_environment()
        obs = env.obs
        results = {name: RunResult(source=source_name, target=name,
                                   batch_size=batch_size)
                   for name in target_names}
        for name, work in zip(target_names, splits):
            if not work:
                results[name].empty = True

        def group_main(target: TargetDevice, work: list[WorkItem],
                       result: RunResult) -> Generator[Event, None, None]:
            track = f"host/{result.target}"
            prep = None
            if obs is not None:
                prep = obs.tracer.begin("prepare", track=track,
                                        target=result.target)
            yield target.prepare(env)
            root = None
            if obs is not None:
                obs.tracer.end(prep)
                root = obs.tracer.begin(
                    "run", track=track, source=source_name,
                    target=result.target, batch_size=batch_size,
                    images=len(work))
            t0 = env.now
            for i, chunk in enumerate(_batched(work, batch_size)):
                span = None
                if obs is not None:
                    span = obs.tracer.begin("process_batch",
                                            track=track, batch=i,
                                            size=len(chunk))
                records = yield target.process_batch(chunk)
                if obs is not None:
                    obs.tracer.end(span)
                result.records.extend(records)
            result.wall_seconds = env.now - t0
            if obs is not None:
                obs.tracer.end(root)

        procs = [env.process(group_main(t, w, results[n]))
                 for t, w, n in zip(targets, splits, target_names) if w]
        env.run(until=env.all_of(procs))
        for target, work, name in zip(targets, splits, target_names):
            if work:
                self._fold_fault_stats(target, results[name])
        return results
