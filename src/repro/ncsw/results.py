"""Inference records and run-level aggregation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import FrameworkError
from repro.numerics.stats import RunningStats

if TYPE_CHECKING:
    from repro.ncsw.faults import FailureEvent


@dataclass(frozen=True)
class InferenceRecord:
    """Outcome of one inference."""

    index: int
    image_id: int
    label: Optional[int]
    predicted: Optional[int]
    confidence: Optional[float]
    device: str
    t_submit: float
    t_complete: float
    #: Top-k predicted labels, most confident first (k=5 by default;
    #: the paper uses top-1 but GoogLeNet is usually judged on both).
    topk: Optional[tuple[int, ...]] = None

    @property
    def latency(self) -> float:
        """Submit-to-complete time of this inference."""
        return self.t_complete - self.t_submit

    @property
    def correct(self) -> Optional[bool]:
        """Top-1 correctness, or None when unlabelled/non-functional."""
        if self.label is None or self.predicted is None:
            return None
        return self.label == self.predicted

    def correct_topk(self, k: int = 5) -> Optional[bool]:
        """Whether the label appears in the top-k predictions."""
        if self.label is None or self.topk is None:
            return None
        return self.label in self.topk[:k]


@dataclass
class RunResult:
    """Aggregated outcome of one source-through-target run."""

    source: str
    target: str
    batch_size: int
    records: list[InferenceRecord] = field(default_factory=list)
    wall_seconds: float = 0.0
    decode_seconds_excluded: float = 0.0
    #: True when the target received no work at all (e.g. an empty
    #: round-robin split in ``run_group`` with more targets than
    #: items); such a result holds no measurement.
    empty: bool = False
    #: Device failures observed during the run (fault-tolerant targets
    #: only; empty on healthy runs).
    failures: list["FailureEvent"] = field(default_factory=list)
    #: Work items drained off failed devices and re-dispatched.
    reassigned: int = 0
    #: Work items given up on (retry budget exhausted / no survivors).
    abandoned: int = 0

    @property
    def images(self) -> int:
        """Number of inference records in the run."""
        return len(self.records)

    @property
    def degraded(self) -> bool:
        """True when any device failed or any work was abandoned."""
        return bool(self.failures) or self.abandoned > 0

    def dead_devices(self) -> tuple[str, ...]:
        """Unique failed-device ids, in failure order."""
        seen: dict[str, None] = {}
        for e in self.failures:
            seen.setdefault(e.device, None)
        return tuple(seen)

    def throughput(self) -> float:
        """Images per second over the run (paper Fig. 6a metric)."""
        if self.empty:
            raise FrameworkError(
                f"target {self.target!r} received no work items "
                "(empty split)")
        if self.wall_seconds <= 0:
            raise FrameworkError("run has no elapsed time")
        return self.images / self.wall_seconds

    def seconds_per_image(self) -> float:
        """Mean inference time per image."""
        if self.empty:
            raise FrameworkError(
                f"target {self.target!r} received no work items "
                "(empty split)")
        if self.images == 0:
            raise FrameworkError("run has no records")
        return self.wall_seconds / self.images

    def top1_error(self) -> float:
        """Fraction of labelled images whose top-1 prediction missed."""
        scored = [r for r in self.records if r.correct is not None]
        if not scored:
            raise FrameworkError(
                "no labelled predictions (non-functional run?)")
        wrong = sum(1 for r in scored if not r.correct)
        return wrong / len(scored)

    def topk_error(self, k: int = 5) -> float:
        """Fraction of labelled images missing from the top-k set."""
        scored = [r for r in self.records
                  if r.correct_topk(k) is not None]
        if not scored:
            raise FrameworkError(
                "no top-k predictions recorded for this run")
        wrong = sum(1 for r in scored if not r.correct_topk(k))
        return wrong / len(scored)

    def confidences(self) -> np.ndarray:
        """Confidence values of correctly-predicted images."""
        return np.array([r.confidence for r in self.records
                         if r.correct and r.confidence is not None])

    def latency_stats(self) -> RunningStats:
        """Distribution of per-image submit-to-complete latency."""
        stats = RunningStats()
        stats.extend(r.latency for r in self.records)
        return stats

    def confusion_matrix(self, num_classes: int) -> np.ndarray:
        """(num_classes, num_classes) count matrix: [truth, predicted].

        Only labelled, predicted records contribute; the diagonal sums
        to the top-1 hit count.
        """
        if num_classes < 1:
            raise FrameworkError("num_classes must be >= 1")
        matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
        for r in self.records:
            if r.label is None or r.predicted is None:
                continue
            if not (0 <= r.label < num_classes
                    and 0 <= r.predicted < num_classes):
                raise FrameworkError(
                    f"record labels ({r.label}, {r.predicted}) exceed "
                    f"num_classes {num_classes}")
            matrix[r.label, r.predicted] += 1
        return matrix

    def per_device_counts(self) -> dict[str, int]:
        """Images handled by each device (round-robin balance check)."""
        counts: dict[str, int] = {}
        for r in self.records:
            counts[r.device] = counts.get(r.device, 0) + 1
        return counts

    def summary(self) -> str:
        """One-line human-readable summary."""
        if self.empty:
            return (f"{self.source}->{self.target} | empty "
                    "(no work items assigned)")
        parts = [f"{self.source}->{self.target}",
                 f"{self.images} images",
                 f"batch {self.batch_size}",
                 f"{self.wall_seconds * 1000:.1f} ms",
                 f"{self.throughput():.1f} img/s"]
        try:
            parts.append(f"top-1 err {self.top1_error():.4f}")
        except FrameworkError:
            pass
        if self.degraded:
            parts.append(
                f"DEGRADED: {len(self.failures)} failure(s) on "
                f"{{{', '.join(self.dead_devices())}}}, "
                f"{self.reassigned} reassigned, "
                f"{self.abandoned} abandoned")
        return " | ".join(parts)
