"""Target devices (the ``TargetDevice`` side of the paper's Fig. 3).

Each target knows how to prepare itself inside a simulation
environment and how to process a batch of work items, returning
:class:`~repro.ncsw.results.InferenceRecord` objects.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.baselines.cpu import CPUDevice
from repro.baselines.device import InferenceDevice
from repro.baselines.gpu import GPUDevice
from repro.errors import (DeviceLost, FrameworkError, NCAPIError,
                          USBError)
from repro.ncs.ncapi import NCAPI, GraphHandle
from repro.ncs.usb import paper_testbed_topology
from repro.ncsw.faults import FailureEvent, FaultPlan, FaultStats
from repro.ncsw.results import InferenceRecord
from repro.ncsw.scheduler import MultiVPUScheduler
from repro.ncsw.sources import WorkItem
from repro.nn.graph import Network
from repro.sim.core import Environment, Event
from repro.vpu.compiler.compile import CompiledGraph, compile_graph
from repro.vpu.myriad2 import Myriad2Config


def record_from_probs(item: WorkItem, flat: Optional[np.ndarray],
                      device: str, t_submit: float,
                      t_complete: float) -> InferenceRecord:
    """Build one :class:`InferenceRecord` from a probability vector.

    ``flat`` is the item's flattened class distribution (None for
    timing-only runs, leaving the prediction fields unset).  Shared by
    the host targets and the split-execution target so every backend
    reports predictions identically.
    """
    predicted = confidence = topk = None
    if flat is not None:
        predicted = int(flat.argmax())
        confidence = float(flat[predicted])
        k = min(5, flat.size)
        order = np.argpartition(flat, -k)[-k:]
        topk = tuple(int(i) for i in order[np.argsort(-flat[order])])
    return InferenceRecord(
        index=item.index, image_id=item.image_id, label=item.label,
        predicted=predicted, confidence=confidence, device=device,
        t_submit=t_submit, t_complete=t_complete, topk=topk)


class TargetDevice:
    """Abstract target: prepare once, then process batches."""

    name = "target"
    tdp_watts = 0.0

    def prepare(self, env: Environment) -> Event:
        """Bring the target up (boot, graph allocation...)."""
        raise NotImplementedError

    def process_batch(self, items: list[WorkItem]) -> Event:
        """Process a batch; event value is a list of records."""
        raise NotImplementedError

    @property
    def device_count(self) -> int:
        """Number of physical devices this target drives."""
        return 1

    @property
    def alive(self) -> bool:
        """False once the target can no longer serve work (all of its
        physical devices are dead).  Host targets never die."""
        return True

    @property
    def preferred_batch_size(self) -> int:
        """Batch size this target's hardware path prefers.

        The serving batcher sizes its windows to this hint: the VPU
        rig peaks at one image per stick (the multi-VPU scheduler
        deals a batch one item per device), while the Caffe hosts
        amortise per-batch overheads and want larger batches.
        """
        return 8

    def fault_stats(self) -> FaultStats:
        """Degraded-mode accounting for the last run (empty unless the
        target supports fault injection and something failed)."""
        return FaultStats()


class _HostTarget(TargetDevice):
    """Shared implementation of the CPU/GPU Caffe-batch targets."""

    _device_cls: type[InferenceDevice]

    def __init__(self, network: Network, functional: bool = True,
                 jitter: float = 0.0) -> None:
        self.network = network
        self.functional = functional
        self.jitter = jitter
        self._device: Optional[InferenceDevice] = None
        self._env: Optional[Environment] = None

    def prepare(self, env: Environment) -> Event:
        self._env = env
        self._device = self._device_cls(env, self.network,
                                        functional=self.functional,
                                        jitter=self.jitter)
        # Host frameworks have a warm-up (weight loading, MKL/cuDNN
        # autotune) that the paper excludes; model it as a fixed cost
        # during preparation.
        return env.timeout(0.5)

    @property
    def tdp_watts(self) -> float:  # type: ignore[override]
        return self._device_cls.tdp_watts

    @property
    def preferred_batch_size(self) -> int:
        """Caffe hosts amortise MKL/cuDNN overheads: want big batches
        (Fig. 6b shows the gain flattening towards batch 16)."""
        return 16

    def process_batch(self, items: list[WorkItem]) -> Event:
        if self._device is None or self._env is None:
            raise FrameworkError(f"{self.name}: prepare() not called")
        return self._env.process(self._process(items))

    def _process(self, items: list[WorkItem]
                 ) -> Generator[Event, None, list[InferenceRecord]]:
        assert self._device is not None and self._env is not None
        t0 = self._env.now
        tensors = [i.tensor for i in items]
        x = (np.stack(tensors) if all(t is not None for t in tensors)
             else None)
        obs = self._env.obs
        span = None
        if obs is not None:
            span = obs.tracer.begin("infer_batch", track=self.name,
                                    size=len(items))
        probs = yield self._device.run_batch(x, batch=len(items))
        if obs is not None:
            obs.tracer.end(span)
            for item in items:
                if item.trace is not None:
                    obs.reqtrace.hop(item.trace, "device_submit",
                                     track=self.name,
                                     t=obs.tracer.timestamp(t0))
                    obs.reqtrace.hop(item.trace, "device_done",
                                     track=self.name)
        records = []
        for pos, item in enumerate(items):
            flat = probs[pos].ravel() if probs is not None else None
            records.append(record_from_probs(
                item, flat, self.name, t0, self._env.now))
        return records


class IntelCPU(_HostTarget):
    """Caffe-MKL batch processing on the dual Xeon host."""

    name = "cpu"
    _device_cls = CPUDevice


class NvGPU(_HostTarget):
    """Caffe-cuDNN batch processing on the Quadro K4000."""

    name = "gpu"
    _device_cls = GPUDevice


class IntelVPU(TargetDevice):
    """The parallel multi-VPU target (paper §III, Fig. 4).

    Parameters
    ----------
    network:
        Network to compile for the sticks (ignored if ``graph`` given).
    num_devices:
        NCS sticks to drive (1-8, the paper's testbed).
    functional:
        Whether sticks execute the network for real.
    overlap:
        Double-buffered load/get (the paper's design) vs serialised
        (ablation).
    graph:
        A pre-compiled graph to reuse (saves recompilation in sweeps).
    fault_plan:
        A :class:`~repro.ncsw.faults.FaultPlan` of seeded device
        failures to arm against the sticks (enables fault tolerance).
    call_timeout:
        Per-call NCAPI deadline in seconds (enables fault tolerance;
        the only way to detect a hung firmware).
    """

    name = "vpu"

    def __init__(self, network: Optional[Network] = None, *,
                 num_devices: int = 8,
                 functional: bool = True,
                 overlap: bool = True,
                 graph: Optional[CompiledGraph] = None,
                 chip_config: Optional[Myriad2Config] = None,
                 jitter: float = 0.0,
                 dynamic: bool = False,
                 fault_plan: Optional[FaultPlan] = None,
                 fault_tolerant: bool = False,
                 call_timeout: Optional[float] = None,
                 max_retries: int = 3,
                 retry_backoff_s: float = 1e-3) -> None:
        if network is None and graph is None:
            raise FrameworkError("IntelVPU needs a network or a graph")
        if not 1 <= num_devices <= 8:
            raise FrameworkError(
                f"the testbed drives 1-8 sticks, got {num_devices}")
        self.num_devices = num_devices
        self.functional = functional
        self.overlap = overlap
        self.chip_config = chip_config
        self.jitter = jitter
        self.dynamic = dynamic
        self.fault_plan = fault_plan
        self.fault_tolerant = (bool(fault_tolerant)
                               or fault_plan is not None
                               or call_timeout is not None)
        self.call_timeout = call_timeout
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self._graph = graph if graph is not None else compile_graph(
            network)  # type: ignore[arg-type]
        self._env: Optional[Environment] = None
        self._handles: list[GraphHandle] = []
        self.api: Optional[NCAPI] = None
        self._fault_stats = FaultStats()

    @property
    def tdp_watts(self) -> float:  # type: ignore[override]
        """Whole-rig TDP: one NCS stick TDP per device (paper Fig. 8a)."""
        from repro.power.tdp import DEFAULT_TDP
        return DEFAULT_TDP.watts("ncs", self.num_devices)

    @property
    def device_count(self) -> int:
        return self.num_devices

    @property
    def alive(self) -> bool:
        """True while at least one stick can still take work."""
        if self._env is None:
            return True  # not prepared yet: no evidence of death
        return any(h.device_alive for h in self._handles)

    @property
    def preferred_batch_size(self) -> int:
        """One image per stick: the scheduler deals a batch across the
        devices, so a larger batch only queues behind itself."""
        return self.num_devices

    @property
    def compiled_graph(self) -> CompiledGraph:
        """The compiled graph resident on every stick."""
        return self._graph

    def fault_stats(self) -> FaultStats:
        """Failures/reassignments/abandonments over the whole run."""
        # A stick that died while idle (between batches) never aborted
        # a call, so no scheduler saw it fail; reconcile against the
        # device state so run-level accounting lists every death.
        reported = {f.device for f in self._fault_stats.events}
        for idx, handle in enumerate(self._handles):
            device = handle.device
            if device.dead and device.device_id not in reported:
                self._fault_stats.events.append(FailureEvent(
                    device=device.device_id,
                    worker=f"vpu{idx}",
                    time=(device.failure_time
                          if device.failure_time is not None
                          else (self._env.now if self._env else 0.0)),
                    kind=device.failure_kind or "death",
                    detail="died idle (no call in flight)",
                    requeued=0))
        self._fault_stats.events.sort(key=lambda f: (f.time, f.device))
        return self._fault_stats

    def prepare(self, env: Environment) -> Event:
        self._env = env
        self._fault_stats = FaultStats()  # fresh run, fresh accounting
        topo = paper_testbed_topology(env, num_devices=self.num_devices)
        self.api = NCAPI(env, topo, functional=self.functional,
                         chip_config=self.chip_config)
        for device in self.api.devices:
            device.latency_jitter = self.jitter
        if self.fault_plan is not None:
            self.fault_plan.arm(env, self.api.devices)
        elif self.fault_tolerant:
            # No scheduled faults, but failover still needs the lost-
            # device hooks armed so host-injected deaths abort calls.
            for device in self.api.devices:
                device.enable_fault_hooks()
        return env.process(self._prepare())

    def _prepare(self) -> Generator[Event, None, None]:
        assert self.api is not None
        if self.fault_tolerant:
            yield from self._prepare_ft()
            return
        # Boot every stick and allocate the graph, concurrently —
        # exactly what NCSw does at start-up.
        opens = [self.api.open_device(i)
                 for i in range(self.num_devices)]
        handles = yield self._env.all_of(opens)  # type: ignore[union-attr]
        device_handles = [handles[ev] for ev in opens]
        allocs = [dh.allocate_compiled(self._graph)
                  for dh in device_handles]
        graphs = yield self._env.all_of(allocs)  # type: ignore[union-attr]
        self._handles = [graphs[ev] for ev in allocs]

    def _prepare_ft(self) -> Generator[Event, None, None]:
        # Same two-barrier shape as the default path (all opens, then
        # all allocations) so a fault-tolerant run with no faults keeps
        # byte-identical timing — but each phase is wrapped per stick
        # so a fault firing mid-boot costs that stick alone, not the
        # whole bring-up.
        env = self._env
        assert env is not None and self.api is not None

        def open_one(index: int):
            try:
                return (yield self.api.open_device(index))
            except (DeviceLost, NCAPIError, USBError):
                return None  # died during boot: not in rotation

        opens = [env.process(open_one(i))
                 for i in range(self.num_devices)]
        opened = yield env.all_of(opens)

        def alloc_one(handle):
            try:
                return (yield handle.allocate_compiled(self._graph))
            except (DeviceLost, NCAPIError, USBError):
                return None  # died during allocation

        allocs = [env.process(alloc_one(opened[p]))
                  for p in opens if opened[p] is not None]
        results = yield env.all_of(allocs)
        self._handles = [results[p] for p in allocs
                         if results[p] is not None]

    def process_batch(self, items: list[WorkItem]) -> Event:
        if self._env is None:
            raise FrameworkError("IntelVPU: prepare() not called")
        if not self._handles:
            if self.fault_tolerant:
                # Every stick died during bring-up: nothing can run.
                self._fault_stats.abandoned += len(items)
                return self._env.timeout(0.0, value=[])
            raise FrameworkError("IntelVPU: prepare() not called")
        return self._env.process(self._process(items))

    def _process(self, items: list[WorkItem]
                 ) -> Generator[Event, None, list[InferenceRecord]]:
        assert self._env is not None
        scheduler = MultiVPUScheduler(
            self._env, self._handles,
            overlap=self.overlap,
            dynamic=self.dynamic,
            fault_tolerant=self.fault_tolerant,
            call_timeout=self.call_timeout,
            max_retries=self.max_retries,
            retry_backoff_s=self.retry_backoff_s)
        yield scheduler.run(items)
        if self.fault_tolerant:
            # One scheduler per batch; fold its accounting into the
            # run-level stats the framework reads back.
            self._fault_stats.merge(scheduler.fault_stats())
        return scheduler.records
