"""Discrete-event simulation (DES) kernel.

A compact, from-scratch process-based DES in the style of SimPy:
generator functions model concurrent activities (SHAVE processors, USB
transfers, host threads); yielding an :class:`~repro.sim.core.Event`
suspends the process until the event fires on the simulated clock.

The kernel is deterministic: events scheduled for the same timestamp are
processed in FIFO order of scheduling, so repeated runs of the same model
produce identical traces.
"""

from repro.sim.core import (Environment, Event, Process, Timeout,
                            Interrupt, CANCELLED, SCHEDULERS,
                            SCHEDULER_ENV_VAR)
from repro.sim.resources import Resource, PriorityResource, Store
from repro.sim.channel import Channel
from repro.sim.monitor import Monitor, TraceRecorder
from repro.sim.wheel import CalendarQueue

__all__ = [
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "Interrupt",
    "CANCELLED",
    "SCHEDULERS",
    "SCHEDULER_ENV_VAR",
    "CalendarQueue",
    "Resource",
    "PriorityResource",
    "Store",
    "Channel",
    "Monitor",
    "TraceRecorder",
]
