"""Shared resources for the DES kernel.

Three primitives cover every contention point in the simulator:

* :class:`Resource` — a counted semaphore with FIFO queueing (USB link
  slots, SHAVE processors, host threads).
* :class:`PriorityResource` — same, but requests carry a priority
  (CMX port arbitration favours SIPP filters over SHAVE loads).
* :class:`Store` — a FIFO buffer of Python objects with blocking put/get
  (inference FIFOs on the NCS, channels between pipeline stages).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.core import CANCELLED, PENDING, Environment, Event


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot.

    Usable as a context manager inside a process::

        with resource.request() as req:
            yield req
            ... hold the resource ...
    """

    __slots__ = ("resource", "priority", "order")

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        # Event.__init__ inlined: requests are created on the sim's
        # innermost loop and the extra frame is measurable.
        self.env = resource.env
        self.callbacks = None
        self._value = PENDING
        self._ok = None
        self._defused = False
        self._processed = False
        self.resource = resource
        self.priority = priority
        self.order = next(resource._counter)
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.resource.release(self)


class Resource:
    """Counted resource with *capacity* slots and FIFO (or priority) queue."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: list[Request] = []
        self._counter = itertools.count()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self, priority: int = 0) -> Request:
        """Ask for a slot; returns an event that fires on acquisition."""
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Return a slot previously granted to *request*.

        Releasing a request that was never granted cancels it (removes it
        from the wait queue); releasing twice is a no-op.
        """
        try:
            self.users.remove(request)
        except ValueError:
            try:
                self.queue.remove(request)
            except ValueError:
                return
            return
        self._grant_next()

    # -- internals ----------------------------------------------------------
    def _do_request(self, request: Request) -> None:
        if len(self.users) < self.capacity:
            self.users.append(request)
            request.succeed()
        else:
            self.queue.append(request)
            self._sort_queue()

    def _sort_queue(self) -> None:
        """FIFO resources keep insertion order; subclasses may reorder."""

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            request = self.queue.pop(0)
            if request._value is not PENDING:
                continue  # cancelled while waiting
            self.users.append(request)
            request.succeed()


class PriorityResource(Resource):
    """Resource whose waiters are served lowest-priority-value first."""

    def _sort_queue(self) -> None:
        self.queue.sort(key=lambda r: (r.priority, r.order))


class StorePut(Event):
    """Pending insertion into a :class:`Store`."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        self.env = store.env
        self.callbacks = None
        self._value = PENDING
        self._ok = None
        self._defused = False
        self._processed = False
        self.item = item


class StoreGet(Event):
    """Pending retrieval from a :class:`Store`."""

    __slots__ = ("filter",)

    def __init__(self, store: "Store",
                 filter: Optional[Callable[[Any], bool]] = None) -> None:
        self.env = store.env
        self.callbacks = None
        self._value = PENDING
        self._ok = None
        self._defused = False
        self._processed = False
        self.filter = filter


class Store:
    """FIFO object buffer with optional capacity bound.

    ``put`` blocks when the store is full; ``get`` blocks when no item
    matches.  ``get`` accepts an optional filter predicate, which the NCS
    device model uses to pop a specific in-flight inference by tag.
    """

    def __init__(self, env: Environment,
                 capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: list[Any] = []
        self._putters: list[StorePut] = []
        self._getters: list[StoreGet] = []
        #: Cancelled waiters still sitting in the lists above (lazy
        #: delete); compacted once they outnumber the live waiters.
        self._cancelled = 0

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Insert *item*; the returned event fires once it is stored."""
        event = StorePut(self, item)
        # Fast path: room available and nobody queued ahead — admit
        # directly, then wake a blocked getter if any.  Identical event
        # ordering to the general dispatch (put succeeds, then gets).
        if not self._putters and len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed()
            if self._getters:
                self._dispatch()
        else:
            self._putters.append(event)
            self._dispatch()
        return event

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Remove and return an item; event fires with the item as value."""
        event = StoreGet(self, filter)
        # Fast path: an item is available and nobody is queued ahead —
        # serve directly, then admit a blocked putter into the freed
        # slot.  Identical event ordering to the general dispatch.
        if not self._getters and self.items:
            idx = 0 if filter is None else self._find(filter)
            if idx is not None:
                event.succeed(self.items.pop(idx))
                if self._putters:
                    self._dispatch()
                return event
        self._getters.append(event)
        self._dispatch()
        return event

    def put_front(self, item: Any) -> StorePut:
        """Insert *item* at the head of the FIFO, jumping the queue.

        Failover uses this to hand back a drained in-flight item so it
        is retried before untouched work.  Unlike :meth:`put` this
        never blocks: a full store raises instead, since queue-jumping
        a full buffer has no sensible wait semantics.
        """
        if len(self.items) >= self.capacity:
            raise SimulationError(
                "put_front on a full store (capacity "
                f"{self.capacity})")
        event = StorePut(self, item)
        self.items.insert(0, item)
        event.succeed()
        self._dispatch()  # a blocked getter may now be servable
        return event

    def cancel(self, event: Event) -> None:
        """Withdraw a pending :meth:`put` or :meth:`get` request.

        A process racing a ``get`` against a timer must cancel the
        losing ``get``, otherwise the stranded getter silently
        swallows a later item that nobody will ever read.  Cancelling
        an already-triggered event is a no-op (its value stands).

        The waiter-list entry is lazily deleted: the event is marked
        with an internal sentinel (O(1) — no ``list.remove`` scan) and
        skipped by the dispatcher; once cancelled entries outnumber
        live waiters, both lists are compacted in one pass.  This
        keeps cancel-heavy deadline races (the common serve pattern:
        most SLO timers are cancelled by completion) linear instead of
        quadratic.
        """
        if event.triggered:
            return
        if not isinstance(event, (StoreGet, StorePut)):
            raise SimulationError(
                f"cannot cancel {event!r}: not a store put/get")
        event._value = CANCELLED
        event._ok = True
        event._defused = True
        event.callbacks = None
        self._cancelled += 1
        if self._cancelled * 2 > len(self._putters) + len(self._getters):
            self._compact()

    # -- internals ----------------------------------------------------------
    def _compact(self) -> None:
        """Drop cancelled waiters from both lists in one pass."""
        self._putters[:] = [e for e in self._putters
                            if e._value is PENDING]
        self._getters[:] = [e for e in self._getters
                            if e._value is PENDING]
        self._cancelled = 0

    def _dispatch(self) -> None:
        items = self.items
        capacity = self.capacity
        progress = True
        while progress:
            progress = False
            # Admit pending puts while there is room.
            putters = self._putters
            while putters and len(items) < capacity:
                put = putters.pop(0)
                if put._value is not PENDING:
                    self._cancelled -= 1
                    continue  # cancelled/withdrawn while waiting
                items.append(put.item)
                put.succeed()
                progress = True
            # Serve pending gets with matching items.  An empty store
            # cannot serve any getter (filters see items only), so skip
            # the scan — and its list churn — outright in that case.
            if not items:
                break
            getters = self._getters
            if getters:
                remaining: list[StoreGet] = []
                for get in getters:
                    if get._value is not PENDING:
                        self._cancelled -= 1
                        continue
                    idx = self._find(get.filter)
                    if idx is None:
                        remaining.append(get)
                    else:
                        get.succeed(items.pop(idx))
                        progress = True
                self._getters = remaining

    def _find(self, filter: Optional[Callable[[Any], bool]]) -> Optional[int]:
        if filter is None:
            return 0 if self.items else None
        for i, item in enumerate(self.items):
            if filter(item):
                return i
        return None


class PreemptionError(SimulationError):
    """Raised when preemptive resources would be required (unsupported)."""
