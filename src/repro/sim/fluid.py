"""Hybrid fluid / discrete-event simulation of the elastic cluster.

Day-long autoscale campaigns at millions of users are out of reach
for per-request DES: every request costs a handful of kernel events,
so a 1e6-user diurnal day is ~1e7 events per configuration.  This
module trades per-request exactness for a mean-field *fluid* model —
queue occupancy evolves by a rate ODE — except where discreteness
actually matters, where it drops back to an exact per-request DES:

* **Fluid windows** (steady state): backlog mass ``q`` obeys
  ``dq/dt = lambda(t) - min(mu * n, ...)`` integrated with explicit
  Euler substeps; served mass is attributed a sojourn of
  ``q/(mu*n) + floor`` (wait behind the backlog, then one service —
  ``floor`` defaults to ``1/mu`` and should be raised to
  ``batch/mu`` when the real cluster serves in batches, since a
  request's latency includes its whole batch's service).
* **DES windows** (transients): whenever a scale action is in
  flight, the predicted sojourn sits inside the SLO boundary band,
  arrivals are a discrete trickle, or the estimated stochastic
  queueing tail reaches the SLO's neighbourhood, the window is
  simulated request-by-request — seeded thinned arrivals, ``n``
  parallel deterministic servers — so integer effects (an empty
  queue, the one request that misses the deadline) are exact where
  they decide the metrics.

The autoscaler stack is reused verbatim: the same policy objects
(:class:`~repro.cluster.autoscale.ReactivePolicy` /
:class:`~repro.cluster.autoscale.PredictivePolicy`) are fed
synthesized :class:`~repro.cluster.autoscale.AutoscaleSignal`
snapshots at the same tick interval, under the same min/max/cooldown
clamps, so fluid scale timelines are directly comparable to DES ones.

Model simplifications (the equivalence gate's tolerance bands exist
because of these): the admission queue is unbounded (no shed/reject),
a host is one FIFO server at the calibrated closed-loop rate, scale
events are instant when a warm slot exists (``boot_s`` otherwise),
and drain is immediate.  :func:`equivalence_gate` asserts
attainment / goodput / p99 agreement against a pure-DES
:class:`~repro.cluster.server.ClusterServer` run on configs small
enough to afford one.
"""

from __future__ import annotations

import hashlib
import math
import time as _time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

import numpy as np

from repro.errors import SimulationError

#: Window simulation modes.
FLUID = "fluid"
DES = "des"

#: Scale action labels — string-identical to
#: :data:`repro.cluster.autoscale.SCALE_OUT` / ``SCALE_IN`` so
#: :func:`repro.cluster.autoscale.cost_point` counts them unchanged
#: (kept literal here to avoid a sim -> cluster import cycle).
SCALE_OUT = "scale-out"
SCALE_IN = "scale-in"


def _rng(seed: int, salt: str) -> np.random.Generator:
    digest = hashlib.sha256(f"sim-fluid:{seed}:{salt}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


@dataclass(frozen=True)
class FluidScaleEvent:
    """One committed scale action (duck-compatible with
    :class:`~repro.cluster.autoscale.ScaleEvent`)."""

    time: float
    action: str
    host: str
    reason: str
    live_after: int


@dataclass(frozen=True)
class FluidWindow:
    """One simulated window and the mode that ran it."""

    start: float
    end: float
    mode: str        #: :data:`FLUID` or :data:`DES`
    arrivals: float  #: offered mass in the window
    served: float    #: completed mass in the window


@dataclass
class FluidResult:
    """Outcome of one hybrid run, attribute-compatible with the
    slices of :class:`~repro.cluster.result.ClusterResult` that the
    cost-frontier folds on (``host_seconds``, ``slo_attainment``,
    ``p99``, ``completed``, ``offered``, ``scale_events``)."""

    offered: int
    completed: int
    completed_mass: float
    attained_mass: float
    host_seconds: float
    wall_seconds: float          #: simulated span (start -> drain)
    elapsed_s: float             #: real wall-clock spent simulating
    slo_seconds: Optional[float]
    scale_events: List[FluidScaleEvent] = field(default_factory=list)
    windows: List[FluidWindow] = field(default_factory=list)
    #: Weighted sojourn samples ``(sojourn_s, mass)`` for percentiles.
    samples: List[tuple] = field(default_factory=list)
    steps: int = 0

    @property
    def slo_attainment(self) -> float:
        """Fraction of served mass inside the SLO."""
        if self.completed_mass <= 0.0:
            return 0.0
        return self.attained_mass / self.completed_mass

    @property
    def goodput(self) -> float:
        """SLO-attained completions per simulated second."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.attained_mass / self.wall_seconds

    @property
    def p99(self) -> float:
        """Mass-weighted p99 sojourn in seconds.

        Raises ``ValueError`` when nothing was served — the same
        contract as the DES results, which the cost-frontier helper
        relies on."""
        return self.percentile(0.99)

    def percentile(self, frac: float) -> float:
        """Mass-weighted sojourn percentile (*frac* in [0, 1])."""
        if not self.samples:
            raise ValueError("no served mass to take percentiles of")
        ordered = sorted(self.samples)
        total = sum(m for _, m in ordered)
        target = frac * total
        acc = 0.0
        for sojourn, mass in ordered:
            acc += mass
            if acc >= target:
                return sojourn
        return ordered[-1][0]

    @property
    def des_windows(self) -> int:
        """Number of windows that ran exact per-request DES."""
        return sum(1 for w in self.windows if w.mode == DES)

    @property
    def fluid_windows(self) -> int:
        """Number of windows that ran the mean-field ODE."""
        return sum(1 for w in self.windows if w.mode == FLUID)

    def summary(self) -> str:
        """One-line human summary (counts, attainment, p99, modes)."""
        p99 = "-"
        try:
            p99 = f"{self.p99 * 1000:.2f} ms"
        except ValueError:
            pass
        return (f"offered {self.offered}, completed {self.completed}, "
                f"attainment {self.slo_attainment:.1%}, p99 {p99}, "
                f"host-sec {self.host_seconds:.3f}, "
                f"{self.fluid_windows} fluid + {self.des_windows} DES "
                f"windows in {self.elapsed_s * 1000:.0f} ms")


class FluidCluster:
    """Hybrid fluid/DES model of the elastic serving cluster.

    Parameters mirror the autoscale campaign setup: a *workload* with
    ``rate_at(t)`` (e.g. :class:`~repro.serve.workload
    .DiurnalWorkload`), the calibrated closed-loop *host_rate*, the
    pool size, and optionally the same :class:`~repro.cluster
    .autoscale.Autoscaler` the DES campaign would use (``None``
    pins the host count at *initial_hosts*).
    """

    def __init__(self, workload: Any, host_rate: float, *,
                 pool: int,
                 autoscaler: Optional[Any] = None,
                 initial_hosts: Optional[int] = None,
                 slo_seconds: Optional[float] = 0.250,
                 boot_s: float = 0.05,
                 dt: Optional[float] = None,
                 service_floor_s: Optional[float] = None,
                 hybrid: bool = True,
                 slo_band: float = 0.25,
                 des_trickle: float = 8.0,
                 max_des_requests: int = 20000,
                 seed: int = 0) -> None:
        if host_rate <= 0:
            raise SimulationError(
                f"host_rate must be positive, got {host_rate}")
        if pool < 1:
            raise SimulationError(f"pool must be >= 1, got {pool}")
        if slo_seconds is not None and slo_seconds <= 0:
            raise SimulationError(
                f"slo_seconds must be positive, got {slo_seconds}")
        self.workload = workload
        self.rate_at: Callable[[float], float]
        if hasattr(workload, "rate_at"):
            self.rate_at = workload.rate_at
        elif hasattr(workload, "rate"):
            rate = float(workload.rate)
            self.rate_at = lambda t: rate
        else:
            raise SimulationError(
                "fluid model needs a workload with rate_at(t) or a "
                f"constant .rate, got {type(workload).__name__}")
        self.mu = float(host_rate)
        self.pool = int(pool)
        self.autoscaler = autoscaler
        if initial_hosts is None:
            initial_hosts = (autoscaler.min_hosts
                             if autoscaler is not None else pool)
        if not 1 <= initial_hosts <= pool:
            raise SimulationError(
                f"initial_hosts must be in [1, {pool}], "
                f"got {initial_hosts}")
        self.initial_hosts = int(initial_hosts)
        self.slo_seconds = slo_seconds
        self.boot_s = float(boot_s)
        #: Per-request service-latency floor.  ``1/mu`` models one
        #: isolated service; a batched cluster should pass
        #: ``batch/host_rate`` — throughput is unchanged (rates stay
        #: calibrated) but every completion's latency includes its
        #: batch's assembly and service.
        self.service_floor_s = max(float(service_floor_s or 0.0),
                                   1.0 / self.mu)
        self.interval_s = (autoscaler.interval_s
                           if autoscaler is not None else 0.02)
        self.dt = float(dt) if dt is not None else self.interval_s / 4.0
        if self.dt <= 0:
            raise SimulationError(f"dt must be positive, got {self.dt}")
        self.hybrid = bool(hybrid)
        self.slo_band = float(slo_band)
        self.des_trickle = float(des_trickle)
        self.max_des_requests = int(max_des_requests)
        self.seed = int(seed)

    # -- the run ---------------------------------------------------------
    def run(self, num_requests: int) -> FluidResult:
        """Simulate until *num_requests* have been offered and the
        backlog has drained; returns the accounting."""
        if num_requests < 1:
            raise SimulationError(
                f"need at least one request, got {num_requests}")
        t_start = _time.perf_counter()
        mu = self.mu
        interval = self.interval_s
        live = self.initial_hosts
        warm = (self.autoscaler.warm_pool
                if self.autoscaler is not None else 0)
        booting: List[float] = []     #: ready-at times of cold boots
        q = 0.0                       #: backlog mass (requests)
        offered = 0.0
        served_mass = 0.0
        attained = 0.0
        host_seconds = 0.0
        last_scale: Optional[float] = None
        scale_events: List[FluidScaleEvent] = []
        windows: List[FluidWindow] = []
        samples: List[tuple] = []
        recent: deque = deque(maxlen=4096)  #: rolling sojourns
        steps = 0
        #: DES-window carry: server next-free times persist across
        #: consecutive DES windows so a service longer than the tick
        #: interval can straddle window boundaries (slow hosts).
        free_times: Optional[List[float]] = None
        t = 0.0
        win_index = 0
        slot_gen = self.initial_hosts  #: next slot label to activate

        def rolling_p99() -> Optional[float]:
            if not recent:
                return None
            ordered = sorted(recent)
            rank = max(0, math.ceil(0.99 * len(ordered)) - 1)
            return ordered[rank]

        def tick(now: float) -> None:
            """One autoscaler decision, same clamps as the DES loop."""
            nonlocal live, warm, last_scale, slot_gen
            asc = self.autoscaler
            if asc is None:
                return
            from repro.cluster.autoscale import AutoscaleSignal

            capacity = live + len(booting)
            addable = self.pool - capacity
            signal = AutoscaleSignal(
                time=now, since_epoch=now, live=live,
                booting=len(booting), addable=addable,
                total_outstanding=int(round(q)),
                rolling_p99=rolling_p99(),
                slo_seconds=self.slo_seconds)
            desired = asc.policy.desired(signal)
            ceiling = capacity + addable
            if asc.max_hosts is not None:
                ceiling = min(ceiling, asc.max_hosts)
            desired = max(asc.min_hosts, min(desired, ceiling))
            if desired == capacity:
                return
            if (last_scale is not None
                    and now - last_scale < asc.cooldown_s):
                return
            reason = (f"{asc.policy.name}: want {desired}, "
                      f"have {capacity}")
            if desired > capacity and addable > 0:
                if warm > 0:
                    live += 1   # warm slot: activates instantly
                else:
                    booting.append(now + self.boot_s)
                scale_events.append(FluidScaleEvent(
                    time=now, action=SCALE_OUT,
                    host=f"slot-{slot_gen}", reason=reason,
                    live_after=live))
                slot_gen += 1
                last_scale = now
            elif desired < capacity and live > asc.min_hosts:
                live -= 1
                scale_events.append(FluidScaleEvent(
                    time=now, action=SCALE_IN,
                    host=f"slot-{live}", reason=reason,
                    live_after=live))
                last_scale = now

        while True:
            # Activate cold boots that finished before this window.
            if booting:
                ready = [r for r in booting if r <= t]
                if ready:
                    live += len(ready)
                    booting = [r for r in booting if r > t]
            tick(t)
            # DES windows offer whole requests, fluid windows offer
            # mass — the half-request slack absorbs the remainder so
            # mixed runs terminate at the target count.
            arriving = offered < num_requests - 0.5
            if not arriving and q <= 1e-9 and not booting:
                break
            end = t + interval
            lam = self.rate_at(t) if arriving else 0.0
            arr_window = lam * interval
            transient = self.hybrid and self._is_transient(
                q, live, lam, arr_window, t, booting)
            if transient:
                (q, got, done, att, win_samples,
                 nsteps, free_times) = self._des_window(
                    t, interval, live, q, lam,
                    num_requests - offered, win_index, free_times)
            else:
                (q, got, done, att, win_samples,
                 nsteps) = self._fluid_window(
                    t, interval, live, q, lam,
                    num_requests - offered)
                # Fluid service is continuous: discrete server
                # occupancy does not carry through a fluid window.
                free_times = None
            offered += got
            served_mass += done
            attained += att
            samples.extend(win_samples)
            for s, m in win_samples:
                recent.append(s)
            host_seconds += live * interval
            steps += nsteps
            windows.append(FluidWindow(start=t, end=end,
                                       mode=DES if transient
                                       else FLUID,
                                       arrivals=got, served=done))
            t = end
            win_index += 1
            if t > 1e7:
                raise SimulationError(
                    "fluid run did not drain (runaway backlog?)")
        return FluidResult(
            offered=int(round(offered)),
            completed=int(round(served_mass)),
            completed_mass=served_mass,
            attained_mass=attained,
            host_seconds=host_seconds,
            wall_seconds=t,
            elapsed_s=_time.perf_counter() - t_start,
            slo_seconds=self.slo_seconds,
            scale_events=scale_events,
            windows=windows,
            samples=samples,
            steps=steps)

    # -- window kernels --------------------------------------------------
    def _is_transient(self, q: float, live: int, lam: float,
                      arr_window: float, t: float,
                      booting: List[float]) -> bool:
        """DES when discreteness decides the window's metrics."""
        if booting:
            return True   # capacity changes mid-window (boot lands)
        if arr_window > 0.0 and arr_window < self.des_trickle:
            return True   # a handful of requests: integer regime
        if self.slo_seconds is not None:
            cap = self.mu * max(1, live)
            sojourn = q / cap + self.service_floor_s
            if abs(sojourn - self.slo_seconds) \
                    <= self.slo_band * self.slo_seconds:
                return True   # attainment boundary: exact ruling
            rho = lam / cap
            if 0.0 < rho < 1.0:
                # Mean-field queues vanish below saturation, but
                # real Poisson arrivals at moderate utilisation
                # still wait (M/M/n-ish tail, ~p99 at 4.6 mean
                # waits).  When that tail reaches the SLO's
                # neighbourhood only exact simulation can rule on
                # attainment.  Vanishes at scale: the wait shrinks
                # with n while SLOs do not (square-root staffing).
                wait99 = 4.6 * rho / ((1.0 - rho) * cap)
                if (wait99 + sojourn
                        >= (1.0 - self.slo_band) * self.slo_seconds):
                    return True
        return False

    def _fluid_window(self, t0: float, win: float, live: int,
                      q: float, lam: float, offer_left: float):
        """Euler substeps of the rate ODE over one window."""
        mu_n = self.mu * max(1, live)
        dt = self.dt
        nsub = max(1, int(round(win / dt)))
        dt = win / nsub
        slo = self.slo_seconds
        got = 0.0
        done = 0.0
        att = 0.0
        samples: List[tuple] = []
        for k in range(nsub):
            arr = min(lam * dt, offer_left - got) if lam > 0 else 0.0
            if arr < 0.0:
                arr = 0.0
            cap = mu_n * dt
            serve = q + arr if q + arr < cap else cap
            # Sojourn of the mass served this substep: wait behind
            # the standing backlog, then one service.
            sojourn = q / mu_n + self.service_floor_s
            q = q + arr - serve
            got += arr
            done += serve
            if serve > 0.0:
                samples.append((sojourn, serve))
                if slo is None or sojourn <= slo:
                    att += serve
        return q, got, done, att, samples, nsub

    def _des_window(self, t0: float, win: float, live: int,
                    q: float, lam: float, offer_left: float,
                    win_index: int,
                    free: Optional[List[float]] = None):
        """Exact per-request window: seeded arrivals, ``live``
        parallel deterministic servers, sojourn per request.

        ``free`` is the server next-free times carried from the
        previous window (None after a fluid window or at the start):
        occupancy must straddle window boundaries, otherwise a
        service time longer than the tick interval could never
        complete at all.
        """
        mu = self.mu
        n = max(1, live)
        service = 1.0 / mu
        # Server occupancy stays 1/mu (throughput is calibrated);
        # the latency floor above it (batch assembly + the rest of
        # the batch's service) is experienced, not capacity-consuming.
        floor_extra = self.service_floor_s - service
        if free is None:
            free = [t0] * n
        elif len(free) < n:
            free = free + [t0] * (n - len(free))   # scale-out: idle
        elif len(free) > n:
            free = sorted(free)[:n]                # scale-in: drop
        # Materialise the backlog head as discrete requests with
        # synthetic arrivals (they queued behind i/(mu*n) of work).
        head = int(min(round(q), self.max_des_requests))
        carry_mass = q - head   # stays fluid behind the head
        pending: List[float] = [t0 - i / (mu * n)
                                for i in range(head, 0, -1)]
        # Thinned Poisson arrivals in [t0, t0+win) at rate lam.
        if lam > 0.0 and offer_left >= 1.0:
            rng = _rng(self.seed, f"window:{win_index}")
            t = t0
            budget = int(offer_left)
            while budget > 0:
                t += float(rng.exponential(1.0 / lam))
                if t >= t0 + win:
                    break
                pending.append(t)
                budget -= 1
        got = float(max(0, len(pending) - head))
        slo = self.slo_seconds
        done = 0.0
        att = 0.0
        samples: List[tuple] = []
        end = t0 + win
        qlen = 0
        for j, arrival in enumerate(pending):
            idx = free.index(min(free))
            start = free[idx] if free[idx] > arrival else arrival
            if start >= end:
                # FIFO: every server is busy past the window edge,
                # so the whole tail rolls into the next window's
                # backlog (starts only grow down the list).
                qlen = len(pending) - j
                break
            finish = start + service
            free[idx] = finish
            sojourn = finish - arrival + floor_extra
            done += 1.0
            samples.append((sojourn, 1.0))
            if slo is None or sojourn <= slo:
                att += 1.0
        q_out = carry_mass + qlen
        return q_out, got, done, att, samples, len(pending), free


# -- the equivalence gate -------------------------------------------------

@dataclass(frozen=True)
class GateCheck:
    """One metric comparison inside the gate."""

    name: str
    fluid: Optional[float]
    des: Optional[float]
    tol: float
    kind: str   #: ``"abs"`` or ``"rel"``
    ok: bool


@dataclass(frozen=True)
class GateReport:
    """Hybrid-vs-DES agreement verdict."""

    ok: bool
    checks: List[GateCheck]

    def render(self) -> str:
        """Fixed-width table of per-check verdicts."""
        lines = ["fluid-vs-DES equivalence gate: "
                 + ("PASS" if self.ok else "FAIL")]
        for c in self.checks:
            fl = "-" if c.fluid is None else f"{c.fluid:.4g}"
            de = "-" if c.des is None else f"{c.des:.4g}"
            lines.append(
                f"  {c.name:<12} fluid {fl:>10} des {de:>10} "
                f"tol {c.tol:g} ({c.kind})  "
                f"{'ok' if c.ok else 'VIOLATION'}")
        return "\n".join(lines)


def equivalence_gate(fluid: FluidResult, des: Any, *,
                     attainment_tol: float = 0.12,
                     goodput_tol: float = 0.30,
                     p99_tol: float = 0.75) -> GateReport:
    """Assert the hybrid run agrees with a pure-DES run.

    *des* is any result exposing ``slo_attainment``, ``goodput`` and
    ``p99`` (a :class:`~repro.cluster.result.ClusterResult` or
    :class:`~repro.serve.result.ServeResult`).  Attainment compares
    absolutely; goodput and p99 relative to the DES value.  The bands
    are deliberately loose — the fluid model has no admission control
    and deterministic service — but tight enough that a model that
    drifts into a different operating regime (queue growing vs
    draining, attainment cliff) fails loudly.
    """
    checks: List[GateCheck] = []

    f_att = fluid.slo_attainment
    d_att = float(des.slo_attainment)
    checks.append(GateCheck(
        name="attainment", fluid=f_att, des=d_att,
        tol=attainment_tol, kind="abs",
        ok=abs(f_att - d_att) <= attainment_tol))

    f_gp = fluid.goodput
    d_gp = float(des.goodput)
    if d_gp > 0.0:
        ok = abs(f_gp - d_gp) <= goodput_tol * d_gp
    else:
        ok = f_gp == 0.0
    checks.append(GateCheck(
        name="goodput", fluid=f_gp, des=d_gp,
        tol=goodput_tol, kind="rel", ok=ok))

    f_p99: Optional[float] = None
    d_p99: Optional[float] = None
    try:
        f_p99 = fluid.p99
        d_p99 = float(des.p99)
    except ValueError:
        pass
    if f_p99 is not None and d_p99 is not None and d_p99 > 0.0:
        checks.append(GateCheck(
            name="p99", fluid=f_p99, des=d_p99,
            tol=p99_tol, kind="rel",
            ok=abs(f_p99 - d_p99) <= p99_tol * d_p99))

    return GateReport(ok=all(c.ok for c in checks), checks=checks)
