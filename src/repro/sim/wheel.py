"""Calendar-queue (event-wheel) scheduler for the DES kernel.

A drop-in alternative to the binary heap in :mod:`repro.sim.core`,
selected via ``Environment(scheduler="wheel")``.  The heap pays
``O(log n)`` comparisons *and* a key-tuple allocation per push; the
wheel exploits the structure of DES schedules instead:

* **Now-deques** — the overwhelmingly common case is scheduling an
  event at the *current* timestamp (process resumptions, store
  handoffs, event chains).  Those land in one of two plain deques
  (urgent / normal), holding bare events with no key tuple and no
  comparisons at all.  FIFO order *is* seq order: ``seq`` increases
  monotonically with push order, so at equal ``(time, priority)`` the
  deque order matches the heap's tie-break exactly.
* **Bucketed wheel** — near-future events (timeouts) hash into
  ``nbuckets`` buckets of width ``width`` seconds.  The cursor bucket
  — the one the clock currently sits in — is kept sorted ascending by
  the full ``(time, priority, seq)`` key, with a *head* index marking
  the consumed prefix: pushes use C ``bisect.insort`` (bounded below
  by the head), pops advance the head.  No per-advance sort, no list
  deletes.  Later buckets collect unsorted appends and are sorted
  once, when the cursor reaches them.
* **Overflow heap** — events beyond the wheel horizon, scheduled in
  the past (a ``run(until=t)`` stop can leave the wheel mid-bucket),
  or carrying an exotic priority outside ``{URGENT, NORMAL}`` fall
  back to an ordinary heap.  Past/exotic entries flip the sticky
  ``_general`` flag, switching ``pop`` to a fully general three-way
  merge until the overflow drains — correctness never depends on the
  fast path applying.
* **Lazy resize** — bucket width adapts to occupancy: a crowded
  bucket narrows the width, repeated long empty-bucket scans widen
  it, and an empty wheel re-anchors at the overflow's earliest event
  and migrates the new horizon back into buckets.

Ordering contract (asserted by the dual-kernel property tests): pops
occur in exactly ascending ``(time, priority, seq)`` — byte-identical
to the heap kernel.  Two invariants carry the proof:

1. Deque items at ``(t, p)`` were all pushed while the wheel clock
   sat at ``t``; any overflow item at the same ``(t, p)`` was pushed
   *before* the clock reached ``t`` (pushes at the current time never
   enter the overflow), hence has a smaller ``seq`` — so on a
   ``(time, priority)`` tie the overflow pops first.
2. Unconsumed bucket items are strictly in the future of the wheel
   clock (advancing consumes every item at the new minimum), so
   buckets never compete with the now-deques.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional

#: Crowded-bucket threshold: more live items than this in the cursor
#: bucket triggers a width shrink (keeps insertion memmoves small).
_SHRINK_AT = 64
#: An advance that scans at least this many empty buckets counts as
#: "sparse"; several in a row trigger a width grow.
_SPARSE_SCAN = 16
_SPARSE_RUNS = 4


class CalendarQueue:
    """Bucketed event queue with now-deques and an overflow heap.

    Items are ``(time, priority, seq, event)``; ``pop`` returns them
    in ascending key order.  Events popped from the now-deques come
    back with ``seq == 0`` — the real sequence number is not kept for
    deque entries (ordering is positional); callers only consume the
    time and the event.
    """

    __slots__ = ("_time", "_urgent", "_normal", "_buckets", "_nbuckets",
                 "_base", "_width", "_inv_width", "_cursor", "_active",
                 "_head", "_overflow", "_general", "_bucket_items",
                 "_sparse", "_shrink_at")

    def __init__(self, initial_time: float = 0.0,
                 nbuckets: int = 256, width: float = 1.0) -> None:
        self._time = float(initial_time)   #: timestamp of the now-deques
        self._urgent: deque = deque()      #: URGENT events at _time
        self._normal: deque = deque()      #: NORMAL events at _time
        self._nbuckets = nbuckets
        self._buckets: list[list] = [[] for _ in range(nbuckets)]
        self._base = self._time            #: start time of the cursor bucket
        self._width = float(width)
        self._inv_width = 1.0 / self._width
        self._cursor = 0
        self._active = self._buckets[0]    #: the cursor bucket (sorted)
        self._head = 0                     #: consumed prefix of _active
        self._overflow: list = []          #: heap: far-future/past/exotic
        self._general = False              #: overflow holds past/exotic items
        self._bucket_items = 0             #: live (unconsumed) bucket items
        self._sparse = 0
        #: Dynamic crowded-bucket threshold.  Starts at _SHRINK_AT and
        #: doubles whenever a shrink attempt decides not to rebuild
        #: (all-one-timestamp runs, or already at the width floor), so
        #: a legitimately crowded bucket does not pay a _maybe_shrink
        #: call on every subsequent push.  Reset on rebuild/advance.
        self._shrink_at = _SHRINK_AT

    # -- push ------------------------------------------------------------
    def push(self, t: float, priority: int, seq: int, event: Any) -> None:
        """Insert one scheduled event."""
        if t == self._time:
            if priority == 1:
                self._normal.append(event)
                return
            if priority == 0:
                self._urgent.append(event)
                return
            heappush(self._overflow, (t, priority, seq, event))
            self._general = True
            return
        d = t - self._base
        if t > self._time and d >= 0.0:
            idx = int(d * self._inv_width)
            if idx == 0:
                # Cursor bucket: sorted insert past the consumed head.
                insort(self._active, (t, priority, seq, event),
                       self._head)
                self._bucket_items += 1
                if len(self._active) - self._head > self._shrink_at:
                    self._maybe_shrink()
                return
            if idx < self._nbuckets:
                self._buckets[(self._cursor + idx) % self._nbuckets].append(
                    (t, priority, seq, event))
                self._bucket_items += 1
                return
            heappush(self._overflow, (t, priority, seq, event))
            return
        # Scheduled at or before the wheel clock (a run(until=t) stop
        # or a past-item general pop can move env time behind the
        # wheel clock, and the bucket window may still cover such a
        # timestamp): general territory — buckets only ever hold
        # strictly-future items (invariant 2).
        heappush(self._overflow, (t, priority, seq, event))
        self._general = True

    # -- pop -------------------------------------------------------------
    def pop(self) -> Optional[tuple]:
        """Remove and return the minimum item, or None when empty."""
        while True:
            if self._general:
                return self._pop_general()
            u = self._urgent
            if u:
                return (self._time, 0, 0, u.popleft())
            n = self._normal
            if n:
                return (self._time, 1, 0, n.popleft())
            if not self._advance():
                return None

    def peek_time(self) -> Optional[float]:
        """Time of the next event without removing it, or None."""
        of = self._overflow
        if self._urgent or self._normal:
            t = self._time
            if of and of[0][0] < t:
                return of[0][0]
            return t
        bt = self._bucket_min_time()
        ot = of[0][0] if of else None
        if bt is None:
            return ot
        if ot is None or bt < ot:
            return bt
        return ot

    # -- the slow paths --------------------------------------------------
    def _pop_general(self) -> Optional[tuple]:
        """Fully ordered three-way merge: deques vs overflow vs wheel.

        Active while the overflow holds past-time or exotic-priority
        entries.  On a ``(time, priority)`` tie the overflow wins —
        its entries predate the clock's arrival at that timestamp, so
        their sequence numbers are smaller (invariant 1 above).
        """
        u = self._urgent
        n = self._normal
        of = self._overflow
        while True:
            if u:
                dp = 0
            elif n:
                dp = 1
            else:
                dp = None
            if of:
                top = of[0]
                if dp is None:
                    bt = self._bucket_min_time()
                    if bt is not None and bt <= top[0]:
                        # The wheel holds the minimum (a tie always
                        # goes to the wheel first: see _advance — the
                        # staged run then competes with the overflow
                        # under the tie rule below).
                        if not self._advance():
                            return None
                        continue
                    item = heappop(of)
                    t = item[0]
                    self._time = t
                    # Pull the rest of the same-time run into the
                    # deques so later now-pushes order after it.
                    while of and of[0][0] == t and of[0][1] <= 1:
                        entry = heappop(of)
                        if entry[1] == 0:
                            u.append(entry[3])
                        else:
                            n.append(entry[3])
                    if not of:
                        self._general = False
                    return item
                if (top[0], top[1]) <= (self._time, dp):
                    item = heappop(of)
                    if not of:
                        self._general = False
                    # Deques stay put: _time is their timestamp, not
                    # the popped item's (which may be in its past).
                    return item
            if dp is not None:
                if dp == 0:
                    return (self._time, 0, 0, u.popleft())
                return (self._time, 1, 0, n.popleft())
            # Deques and overflow are empty.
            self._general = False
            if not self._advance():
                return None

    def _bucket_min_time(self) -> Optional[float]:
        """Earliest event time anywhere in the wheel, or None.

        Buckets partition time in cursor order within one lap, so the
        first non-empty bucket contains the wheel-wide minimum.
        """
        if not self._bucket_items:
            return None
        if self._head < len(self._active):
            return self._active[self._head][0]
        buckets = self._buckets
        nb = self._nbuckets
        cursor = self._cursor
        for k in range(1, nb):
            b = buckets[(cursor + k) % nb]
            if b:
                return min(item[0] for item in b)
        return None

    # -- advancing the clock ---------------------------------------------
    def _advance(self) -> bool:
        """Move the clock to the next scheduled time and stage that
        run of events into the now-deques.  Returns False when the
        queue is empty.  Only called with both deques empty."""
        b = self._active
        h = self._head
        ln = len(b)
        if h >= ln:
            if not self._next_bucket():
                return False
            b = self._active
            h = self._head
            ln = len(b)
        item = b[h]
        t = item[0]
        self._time = t
        # Stage the whole run at t; the singleton case falls through
        # the while-condition immediately.
        urgent = self._urgent
        normal = self._normal
        while True:
            p = item[1]
            if p == 1:
                normal.append(item[3])
            elif p == 0:
                urgent.append(item[3])
            else:
                heappush(self._overflow, item)
                self._general = True
            h += 1
            self._bucket_items -= 1
            if h >= ln or b[h][0] != t:
                break
            item = b[h]
        if h >= ln:
            del b[:]
            self._head = 0
        else:
            self._head = h
        return True

    def _next_bucket(self) -> bool:
        """Move the cursor to the next occupied bucket (sorting it),
        or re-anchor from the overflow when the wheel is empty."""
        if self._bucket_items:
            buckets = self._buckets
            nb = self._nbuckets
            cursor = self._cursor
            for k in range(1, nb + 1):
                b = buckets[(cursor + k) % nb]
                if b:
                    break
            self._cursor = (cursor + k) % nb
            self._base += k * self._width
            if k >= _SPARSE_SCAN:
                self._sparse += 1
                if self._sparse >= _SPARSE_RUNS:
                    self._sparse = 0
                    self._rebuild(self._width * _SPARSE_SCAN)
                    return self._next_bucket()
            else:
                self._sparse = 0
            b.sort()
            self._active = b
            self._head = 0
            self._shrink_at = _SHRINK_AT
            return True
        of = self._overflow
        if not of:
            return False
        # Wheel empty: re-anchor at the overflow's earliest event and
        # migrate everything inside the new horizon back into buckets.
        # (Never reached with past/exotic overflow entries — the
        # general pop path only advances while buckets are occupied.)
        t0 = of[0][0]
        nb = self._nbuckets
        self._cursor = 0
        self._base = t0
        self._sparse = 0
        horizon = t0 + nb * self._width
        inv = self._inv_width
        buckets = self._buckets
        while of and of[0][0] < horizon:
            item = heappop(of)
            idx = int((item[0] - t0) * inv)
            if idx >= nb:  # float rounding at the horizon edge
                heappush(of, item)
                break
            buckets[idx].append(item)
            self._bucket_items += 1
        b = buckets[0]
        b.sort()
        self._active = b
        self._head = 0
        if not b:
            # First migrated item rounded past bucket 0; scan onward.
            return self._next_bucket()
        return True

    # -- lazy resize -----------------------------------------------------
    def _maybe_shrink(self) -> None:
        """Narrow the bucket width so the crowded cursor bucket would
        spread out over many buckets.  When shrinking cannot help
        (single-timestamp run, width floor reached) the trigger
        threshold doubles instead, so the decision is not re-made on
        every push into a bucket that is allowed to stay crowded."""
        b = self._active
        h = self._head
        span = b[-1][0] - b[h][0]
        if span <= 0.0 or self._width <= 1e-9:
            self._shrink_at *= 2
            return  # one timestamp; narrower buckets cannot help
        live = len(b) - h
        width = max(span * 4.0 / live, span / (self._nbuckets // 2))
        if width < self._width:
            self._rebuild(width)
        else:
            self._shrink_at *= 2

    def _rebuild(self, width: float) -> None:
        """Re-bucket every wheel item under a new width, anchored at
        the current clock.  Items past the new horizon spill to the
        overflow (where they stay strictly future — no generality)."""
        # Drop the cursor bucket's consumed (already fired) prefix
        # before collecting, so it cannot be re-inserted.
        if self._head:
            del self._active[:self._head]
            self._head = 0
        items: list = []
        for b in self._buckets:
            if b:
                items.extend(b)
                del b[:]
        self._bucket_items = 0
        self._width = float(width)
        self._inv_width = 1.0 / self._width
        self._base = self._time
        self._cursor = 0
        nb = self._nbuckets
        inv = self._inv_width
        base = self._base
        of = self._overflow
        buckets = self._buckets
        for item in items:
            idx = int((item[0] - base) * inv)
            if 0 <= idx < nb:
                buckets[idx].append(item)
                self._bucket_items += 1
            else:
                heappush(of, item)
        b = buckets[0]
        b.sort()
        self._active = b
        self._head = 0
        self._shrink_at = _SHRINK_AT

    # -- maintenance -----------------------------------------------------
    def __len__(self) -> int:
        return (len(self._urgent) + len(self._normal)
                + self._bucket_items + len(self._overflow))

    def compact(self, drop: Callable[[Any], bool]) -> int:
        """Remove every queued event for which ``drop(event)`` is
        true; returns how many were removed."""
        removed = 0
        for dq in (self._urgent, self._normal):
            kept = [ev for ev in dq if not drop(ev)]
            if len(kept) != len(dq):
                removed += len(dq) - len(kept)
                # In-place: the run loop aliases these deques.
                dq.clear()
                dq.extend(kept)
        # Strip the cursor bucket's consumed prefix first so the
        # filter below only sees live entries.
        if self._head:
            del self._active[:self._head]
            self._head = 0
        for b in self._buckets:
            if b:
                kept_items = [item for item in b if not drop(item[3])]
                if len(kept_items) != len(b):
                    removed += len(b) - len(kept_items)
                    self._bucket_items -= len(b) - len(kept_items)
                    b[:] = kept_items
        kept_of = [item for item in self._overflow if not drop(item[3])]
        removed += len(self._overflow) - len(kept_of)
        if len(kept_of) != len(self._overflow):
            heapify(kept_of)
            self._overflow[:] = kept_of
            if not kept_of:
                self._general = False
        return removed
