"""Point-to-point message channels built on :class:`~repro.sim.resources.Store`.

A :class:`Channel` is a bounded FIFO with an optional per-message transfer
delay, modelling a link whose occupancy matters (the USB pipe between host
and NCS, or the AXI path between DDR and CMX).  Messages become visible to
the receiver only after the transfer delay has elapsed.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.sim.core import Environment, Event
from repro.sim.resources import Store


class Channel:
    """Unidirectional FIFO channel with transfer latency.

    Parameters
    ----------
    env:
        Simulation environment.
    capacity:
        Maximum number of messages in flight + buffered.
    delay:
        Either a constant delay in simulated seconds, or a callable
        ``f(message) -> seconds`` (used to express size-dependent
        transfer costs).
    """

    def __init__(self, env: Environment,
                 capacity: float = float("inf"),
                 delay: float | Callable[[Any], float] = 0.0) -> None:
        self.env = env
        self._store = Store(env, capacity)
        self._delay = delay
        self.sent = 0
        self.received = 0

    def _delay_for(self, message: Any) -> float:
        if callable(self._delay):
            return float(self._delay(message))
        return float(self._delay)

    def send(self, message: Any) -> Event:
        """Send *message*; returned event fires when it is buffered."""
        delay = self._delay_for(message)
        self.sent += 1
        if delay <= 0:
            return self._store.put(message)
        return self.env.process(self._delayed_put(message, delay))

    def _delayed_put(self, message: Any,
                     delay: float) -> Generator[Event, Any, None]:
        yield self.env.timeout(delay)
        yield self._store.put(message)

    def recv(self,
             filter: Optional[Callable[[Any], bool]] = None) -> Event:
        """Receive a message; event fires with the message as its value."""
        get = self._store.get(filter)
        get.add_callback(self._count_recv)
        return get

    def _count_recv(self, event: Event) -> None:
        if event.ok:
            self.received += 1

    @property
    def pending(self) -> int:
        """Messages buffered and ready to be received."""
        return len(self._store)
