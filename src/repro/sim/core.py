"""Core of the discrete-event simulation kernel.

The design follows the classic process-interaction style: a *process* is
a Python generator that yields :class:`Event` objects; the
:class:`Environment` owns a priority queue of ``(time, priority, seq)``
keys and resumes processes as their awaited events fire.

Determinism contract: two events scheduled for the same simulated time
and priority fire in the order they were scheduled (``seq`` is a
monotonically increasing tie-breaker).  This makes every model built on
the kernel reproducible run-to-run, which the test-suite relies on.

The kernel is the innermost loop of every experiment, so the event
types are deliberately lean: ``__slots__`` everywhere (no per-instance
dicts), callback lists created lazily on first registration (most
events only ever get one), and a scheduler loop that touches the heap
directly.  None of this changes behaviour — the determinism contract
and event ordering are byte-identical to the straightforward
implementation, which the replay tests assert.
"""

from __future__ import annotations

import os
from bisect import insort
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import DeadlockError, SimulationError
from repro.sim.wheel import CalendarQueue

#: Default event priority. Lower values fire earlier at equal timestamps.
NORMAL = 1
#: Priority used by urgent bookkeeping events (process resumption).
URGENT = 0

PENDING = object()  #: sentinel: event value not yet set
CANCELLED = object()  #: sentinel: scheduled event withdrawn via cancel()

#: Environment variable overriding the default scheduler kernel, so an
#: unmodified test-suite or CLI campaign can run against the wheel.
SCHEDULER_ENV_VAR = "REPRO_SIM_SCHEDULER"
SCHEDULERS = ("heap", "wheel")


class Event:
    """An occurrence at a point in simulated time.

    Events start *untriggered*; calling :meth:`succeed` or :meth:`fail`
    schedules them on the environment's queue.  Callbacks registered in
    :attr:`callbacks` run when the event is popped from the queue.

    :attr:`callbacks` is ``None`` until the first registration (and
    again once the event has been processed — check :attr:`processed`
    to tell the states apart); use :meth:`add_callback` to register
    without caring about the distinction.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused",
                 "_processed")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = None
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        #: set by Process when it fails so unhandled errors surface in run()
        self._defused = False
        self._processed = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception if it failed)."""
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register *fn* to run when the event is processed."""
        if self._processed:
            raise SimulationError(
                f"{self!r} already processed; callback would never run")
        cbs = self.callbacks
        if cbs is None:
            self.callbacks = [fn]
        else:
            cbs.append(fn)

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value*."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._seq = seq = env._seq + 1
        wheel = env._wheel
        if wheel is None:
            heappush(env._queue, (env._now, NORMAL, seq, self))
        elif env._now == wheel._time:
            # Inlined wheel now-path: this is the hottest schedule
            # site in the kernel and the method call is measurable.
            wheel._normal.append(self)
        else:
            wheel.push(env._now, NORMAL, seq, self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on the
        event.  If nothing waits on a failed event, :meth:`Environment.run`
        raises it at the event's fire time (no silently-lost errors).
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        env = self.env
        env._seq = seq = env._seq + 1
        wheel = env._wheel
        if wheel is None:
            heappush(env._queue, (env._now, NORMAL, seq, self))
        elif env._now == wheel._time:
            wheel._normal.append(self)
        else:
            wheel.push(env._now, NORMAL, seq, self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (for chaining)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event._defused = True
            self.fail(event._value)

    # -- composition --------------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires *delay* time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float,
                 value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        self.callbacks = None
        self._ok = True
        self._value = value
        self._defused = False
        self._processed = False
        self.delay = delay
        env._seq = seq = env._seq + 1
        wheel = env._wheel
        if wheel is None:
            heappush(env._queue, (env._now + delay, NORMAL, seq, self))
        else:
            # Inlined future push: timeouts are the hot future path
            # and the extra method frame is measurable at depth.
            # Mirrors CalendarQueue.push for NORMAL priority.
            t = env._now + delay
            d = t - wheel._base
            if t > wheel._time and d >= 0.0:
                idx = int(d * wheel._inv_width)
                if idx == 0:
                    insort(wheel._active, (t, NORMAL, seq, self),
                           wheel._head)
                    wheel._bucket_items += 1
                    if (len(wheel._active) - wheel._head
                            > wheel._shrink_at):
                        wheel._maybe_shrink()
                elif idx < wheel._nbuckets:
                    wheel._buckets[
                        (wheel._cursor + idx) % wheel._nbuckets
                    ].append((t, NORMAL, seq, self))
                    wheel._bucket_items += 1
                else:
                    heappush(wheel._overflow, (t, NORMAL, seq, self))
            elif t == wheel._time:
                wheel._normal.append(self)
            else:
                wheel.push(t, NORMAL, seq, self)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Initialize(Event):
    """Internal: starts a Process at the current time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        self.env = env
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        self._defused = False
        self._processed = False
        env._seq = seq = env._seq + 1
        wheel = env._wheel
        if wheel is None:
            heappush(env._queue, (env._now, URGENT, seq, self))
        elif env._now == wheel._time:
            wheel._urgent.append(self)
        else:
            wheel.push(env._now, URGENT, seq, self)


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    @property
    def cause(self) -> Any:
        """The value passed to Process.interrupt()."""
        return self.args[0] if self.args else None


class Process(Event):
    """Wraps a generator; is itself an event that fires on completion.

    The generator may ``yield`` any :class:`Event`; the process resumes
    when that event fires, receiving the event's value (or having the
    event's exception thrown into it).
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment",
                 generator: Generator[Event, Any, Any]) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        Initialize(env, self)
        if env.obs is not None:
            env.obs.process_started(self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks = [self._resume]
        self.env.schedule(event, URGENT)
        # Detach from the event the process was waiting on.
        target = self._target
        if target is not None:
            if target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:
                    pass
            self._target = None

    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_proc = self
        generator = self._generator
        while True:
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    event._defused = True
                    next_event = generator.throw(event._value)
            except StopIteration as exc:
                self._ok = True
                self._value = exc.value
                env._seq = seq = env._seq + 1
                wheel = env._wheel
                if wheel is None:
                    heappush(env._queue, (env._now, NORMAL, seq, self))
                elif env._now == wheel._time:
                    wheel._normal.append(self)
                else:
                    wheel.push(env._now, NORMAL, seq, self)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                env._seq = seq = env._seq + 1
                wheel = env._wheel
                if wheel is None:
                    heappush(env._queue, (env._now, NORMAL, seq, self))
                elif env._now == wheel._time:
                    wheel._normal.append(self)
                else:
                    wheel.push(env._now, NORMAL, seq, self)
                break

            if not isinstance(next_event, Event):
                env._active_proc = None
                raise SimulationError(
                    f"process yielded a non-event: {next_event!r}")
            if next_event.env is not env:
                env._active_proc = None
                raise SimulationError(
                    "process yielded an event from a different environment")

            if not next_event._processed:
                # Event still pending: register for resumption and suspend.
                cbs = next_event.callbacks
                if cbs is None:
                    next_event.callbacks = [self._resume]
                else:
                    cbs.append(self._resume)
                self._target = next_event
                break
            # Event already processed: continue immediately with its value.
            event = next_event
        env._active_proc = None
        if self._value is not PENDING and env.obs is not None:
            env.obs.process_finished(self)


class Condition(Event):
    """Composite event over a set of events (``&`` / ``|`` operators)."""

    __slots__ = ("_evaluate", "_events", "_count")

    @staticmethod
    def all_events(events: list[Event], count: int) -> bool:
        return count == len(events)

    @staticmethod
    def any_events(events: list[Event], count: int) -> bool:
        return count > 0 or not events

    def __init__(self, env: "Environment",
                 evaluate: Callable[[list[Event], int], bool],
                 events: Iterable[Event]) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("events from different environments")
        if self._evaluate(self._events, 0):
            self.succeed(self._collect())
            return
        for event in self._events:
            if event._processed:
                self._check(event)
            else:
                cbs = event.callbacks
                if cbs is None:
                    event.callbacks = [self._check]
                else:
                    cbs.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self._events
                if e.triggered and e._ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._evaluate(self._events, self._count):
            self.succeed(self._collect())


class Environment:
    """Execution environment: simulated clock plus the event queue.

    ``scheduler`` selects the queue kernel: ``"heap"`` (the default,
    a binary heap) or ``"wheel"`` (the calendar queue in
    :mod:`repro.sim.wheel`).  Both obey the same determinism
    contract — fire order is exactly ascending ``(time, priority,
    seq)`` — so models are byte-identical across kernels; the wheel
    is simply faster on schedule-at-now-heavy workloads.  When
    ``scheduler`` is None the :data:`SCHEDULER_ENV_VAR` environment
    variable picks the kernel (default ``"heap"``), which lets an
    unmodified test-suite or campaign run against the wheel.
    """

    def __init__(self, initial_time: float = 0.0,
                 scheduler: Optional[str] = None) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        if scheduler is None:
            scheduler = os.environ.get(SCHEDULER_ENV_VAR, "heap")
        if scheduler not in SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {scheduler!r}; expected one of "
                f"{', '.join(SCHEDULERS)}")
        self.scheduler = scheduler
        self._wheel: Optional[CalendarQueue] = (
            CalendarQueue(self._now) if scheduler == "wheel" else None)
        #: Scheduled-but-cancelled events still occupying the queue;
        #: compacted away once they outnumber the live entries.
        self._cancelled = 0
        self._active_proc: Optional[Process] = None
        #: Optional observability session (see repro.obs.ObsSession).
        #: When None — the default — instrumentation points across the
        #: models reduce to a single attribute check, keeping the
        #: no-tracing path zero-cost.  Set via ObsSession.attach(env).
        self.obs: Optional[Any] = None

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing after *delay* time units."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Start a new process from *generator*."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> Condition:
        """Event that fires when every event in *events* has fired."""
        return Condition(self, Condition.all_events, events)

    def any_of(self, events: Iterable[Event]) -> Condition:
        """Event that fires when at least one event in *events* fires."""
        return Condition(self, Condition.any_events, events)

    # -- scheduling ----------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL,
                 delay: float = 0.0) -> None:
        """Place *event* on the queue to fire after *delay*."""
        self._seq = seq = self._seq + 1
        if self._wheel is None:
            heappush(self._queue, (self._now + delay, priority, seq, event))
        else:
            self._wheel.push(self._now + delay, priority, seq, event)

    def cancel(self, event: Event) -> None:
        """Withdraw a scheduled event: its callbacks never run and its
        value is discarded (replaced by an internal sentinel).

        The queue entry is lazily deleted — it stays in place, inert,
        until either its fire time arrives (firing a cancelled event
        is a no-op) or cancelled entries outnumber live ones, at which
        point the queue is compacted in one pass.  Cancelling an
        already-processed or already-cancelled event is a no-op;
        cancelling an event that was never scheduled is an error (use
        :meth:`~repro.sim.resources.Store.cancel` for store waiters).
        """
        if event._value is PENDING:
            raise SimulationError(
                f"cannot cancel {event!r}: not scheduled")
        if event._processed or event._value is CANCELLED:
            return
        event._value = CANCELLED
        event._ok = True
        event._defused = True
        event.callbacks = None
        self._cancelled += 1
        size = (len(self._queue) if self._wheel is None
                else len(self._wheel))
        if self._cancelled * 2 > size:
            self.compact()

    def compact(self) -> int:
        """Drop cancelled entries from the queue; returns the number
        removed.  Called automatically by :meth:`cancel` once
        cancelled entries exceed half the queue."""
        if self._wheel is None:
            kept = [entry for entry in self._queue
                    if entry[3]._value is not CANCELLED]
            removed = len(self._queue) - len(kept)
            if removed:
                heapify(kept)
                # In-place: the run loop holds a reference to the list.
                self._queue[:] = kept
        else:
            removed = self._wheel.compact(
                lambda ev: ev._value is CANCELLED)
        self._cancelled = 0
        return removed

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if the queue is empty."""
        if self._wheel is None:
            return self._queue[0][0] if self._queue else float("inf")
        t = self._wheel.peek_time()
        return t if t is not None else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if self._wheel is None:
            if not self._queue:
                raise DeadlockError("event queue is empty")
            self._now, _, _, event = heappop(self._queue)
        else:
            item = self._wheel.pop()
            if item is None:
                raise DeadlockError("event queue is empty")
            self._now = item[0]
            event = item[3]
        event._processed = True
        callbacks = event.callbacks
        if callbacks is not None:
            event.callbacks = None
            for callback in callbacks:
                callback(event)
        if not event._ok and not event._defused:
            # A failed event nobody handled: surface it.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (drain the queue), a number (run up to
        that simulated time), or an :class:`Event` (run until it fires,
        returning its value).
        """
        stop_at = float("inf")
        stop_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event._processed:
                    return stop_event.value
            else:
                stop_at = float(until)
                if stop_at < self._now:
                    raise ValueError(
                        f"until={stop_at} is in the past (now={self._now})")

        if self._wheel is not None:
            return self._run_wheel(stop_event, stop_at)

        # The loop below is :meth:`step` inlined (minus the empty-queue
        # guard, which the while condition covers): one Python frame per
        # event instead of two matters at millions of events per run.
        queue = self._queue
        pop = heappop
        if stop_event is not None and stop_at == float("inf"):
            # Fast path for the common run-until-event case: no
            # per-step time-horizon comparison.
            while queue and not stop_event._processed:
                self._now, _, _, event = pop(queue)
                event._processed = True
                callbacks = event.callbacks
                if callbacks is not None:
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    raise event._value
        else:
            while queue:
                if stop_event is not None and stop_event._processed:
                    break
                if queue[0][0] > stop_at:
                    self._now = stop_at
                    return None
                self._now, _, _, event = pop(queue)
                event._processed = True
                callbacks = event.callbacks
                if callbacks is not None:
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    raise event._value

        if stop_event is not None:
            if not stop_event.triggered:
                raise DeadlockError(
                    "simulation ended before the awaited event fired")
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        if stop_at != float("inf"):
            self._now = stop_at
        return None

    def _run_wheel(self, stop_event: Optional[Event],
                   stop_at: float) -> Any:
        """:meth:`run` against the calendar-queue kernel.

        The hot loop pops bare events straight off the wheel's
        now-deques — no key tuple, no comparisons — and only drops
        into the general pop when the wheel says ordering demands it.
        Fire order is byte-identical to the heap loop.
        """
        wheel = self._wheel
        if stop_at == float("inf"):
            # Drain / run-until-event: no per-event horizon check.
            urgent = wheel._urgent
            normal = wheel._normal
            while stop_event is None or not stop_event._processed:
                if wheel._general:
                    item = wheel._pop_general()
                    if item is None:
                        break
                    self._now = item[0]
                    event = item[3]
                elif urgent:
                    event = urgent.popleft()
                elif normal:
                    event = normal.popleft()
                else:
                    # Singleton-advance inline: a lone NORMAL event at
                    # the cursor bucket's head (the common timeout
                    # shape) fires directly, skipping the _advance
                    # frame and the deque round-trip.  Runs of >1
                    # event, URGENT/exotic heads, and bucket/overflow
                    # transitions take the general _advance.
                    b = wheel._active
                    h = wheel._head
                    ln = len(b)
                    if h < ln:
                        item = b[h]
                        h1 = h + 1
                        if item[1] == 1 and (h1 == ln
                                             or b[h1][0] != item[0]):
                            wheel._bucket_items -= 1
                            if h1 == ln:
                                del b[:]
                                wheel._head = 0
                            else:
                                wheel._head = h1
                            self._now = wheel._time = item[0]
                            event = item[3]
                        else:
                            if not wheel._advance():
                                break
                            self._now = wheel._time
                            continue
                    else:
                        if not wheel._advance():
                            break
                        self._now = wheel._time
                        continue
                event._processed = True
                callbacks = event.callbacks
                if callbacks is not None:
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    raise event._value
        else:
            while True:
                if stop_event is not None and stop_event._processed:
                    break
                t = wheel.peek_time()
                if t is None:
                    break
                if t > stop_at:
                    self._now = stop_at
                    return None
                item = wheel.pop()
                self._now = item[0]
                event = item[3]
                event._processed = True
                callbacks = event.callbacks
                if callbacks is not None:
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    raise event._value

        if stop_event is not None:
            if not stop_event.triggered:
                raise DeadlockError(
                    "simulation ended before the awaited event fired")
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        if stop_at != float("inf"):
            self._now = stop_at
        return None
