"""Measurement probes for simulation models.

:class:`Monitor` accumulates ``(time, value)`` samples and computes
time-weighted statistics — used for link utilisation, queue depths and
power draw.  :class:`TraceRecorder` collects structured trace events
(who did what, when) that the test-suite asserts against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.sim.core import Environment


class Monitor:
    """Piecewise-constant signal sampled against the simulated clock."""

    def __init__(self, env: Environment, name: str = "") -> None:
        self.env = env
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, value: float) -> None:
        """Record *value* effective from the current simulated time."""
        self.times.append(self.env.now)
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.values)

    @property
    def last(self) -> float:
        """Most recently recorded value (0.0 if nothing recorded)."""
        return self.values[-1] if self.values else 0.0

    def time_average(self, until: float | None = None) -> float:
        """Time-weighted mean of the signal from first sample to *until*.

        An *until* strictly before the first sample means no part of
        the signal is in the window, so the average is 0.0 (matching
        :meth:`integral`); ``until == first sample time`` keeps the
        zero-duration fallback of returning the sample value.
        """
        if not self.values:
            return 0.0
        end = self.env.now if until is None else until
        if end < self.times[0]:
            return 0.0
        total = 0.0
        duration = 0.0
        for i, (t, v) in enumerate(zip(self.times, self.values)):
            t_next = self.times[i + 1] if i + 1 < len(self.times) else end
            t_next = min(t_next, end)
            if t_next <= t:
                continue
            total += v * (t_next - t)
            duration += t_next - t
        return total / duration if duration > 0 else self.values[0]

    def integral(self, until: float | None = None) -> float:
        """Integral of the signal over time (e.g. power -> energy)."""
        if not self.values:
            return 0.0
        end = self.env.now if until is None else until
        total = 0.0
        for i, (t, v) in enumerate(zip(self.times, self.values)):
            t_next = self.times[i + 1] if i + 1 < len(self.times) else end
            t_next = min(t_next, end)
            if t_next > t:
                total += v * (t_next - t)
        return total

    def maximum(self) -> float:
        """Largest recorded value (0.0 if nothing recorded)."""
        return max(self.values) if self.values else 0.0


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record."""

    time: float
    actor: str
    action: str
    detail: dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Append-only log of :class:`TraceEvent` records.

    Recording is toggled through :meth:`enable` / :meth:`disable` —
    the same API shape as :class:`repro.obs.tracer.Tracer`.  Assigning
    the :attr:`enabled` attribute directly still works but is
    deprecated.
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.events: list[TraceEvent] = []
        self._enabled = True

    @property
    def enabled(self) -> bool:
        """Whether :meth:`emit` records anything."""
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        import warnings

        warnings.warn(
            "setting TraceRecorder.enabled directly is deprecated; "
            "use enable()/disable()", DeprecationWarning, stacklevel=2)
        self._enabled = bool(value)

    def enable(self) -> None:
        """Resume recording trace events."""
        self._enabled = True

    def disable(self) -> None:
        """Stop recording; subsequent :meth:`emit` calls are no-ops."""
        self._enabled = False

    def emit(self, actor: str, action: str, **detail: Any) -> None:
        """Append a trace record stamped with the current simulated time."""
        if self._enabled:
            self.events.append(
                TraceEvent(self.env.now, actor, action, detail))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def by_action(self, action: str) -> list[TraceEvent]:
        """All records whose action equals *action*."""
        return [e for e in self.events if e.action == action]

    def by_actor(self, actor: str) -> list[TraceEvent]:
        """All records emitted by *actor*."""
        return [e for e in self.events if e.actor == actor]
