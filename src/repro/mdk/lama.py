"""LAMA-style GEMM with CMX tiling.

Reproduces the analysis of Ionica & Gregg, "The Movidius Myriad
architecture's potential for scientific computing" (IEEE Micro 2015) —
the study the paper's related-work section pairs itself with: a custom
GEMM whose A/B/C tiles live in CMX, with performance reported in
Gflops and Gflops/W (estimated through TDP, exactly like the paper's
Eq. 1).

The plan picks square-ish tiles so that one A-tile, one B-tile and one
C-tile per SHAVE fit the per-SHAVE CMX slice; the cycle model then
charges the tile GEMMs to the VAU and the tile traffic to the LSUs,
with DDR streaming for matrices too large for CMX residency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CompileError
from repro.mdk.kernels import ComputeKernel, KernelLauncher
from repro.numerics.quant import PrecisionPolicy
from repro.sim.core import Event
from repro.vpu.cmx import CMX_SLICE_BYTES
from repro.vpu.myriad2 import Myriad2
from repro.vpu.shave import KernelWorkload


@dataclass(frozen=True)
class GemmPlan:
    """Tiling plan for C[M,N] += A[M,K] @ B[K,N]."""

    m: int
    n: int
    k: int
    tile: int              #: square CMX tile edge
    bytes_per_element: int
    shaves: int
    tiles_m: int
    tiles_n: int
    tiles_k: int

    @property
    def macs(self) -> int:
        """Multiply-accumulates of the full GEMM."""
        return self.m * self.n * self.k

    @property
    def flops(self) -> int:
        """Floating-point operations (2 per MAC)."""
        return 2 * self.macs

    @property
    def tile_bytes(self) -> int:
        """CMX bytes one (A, B, C) tile set occupies."""
        return 3 * self.tile * self.tile * self.bytes_per_element

    @property
    def ddr_traffic_bytes(self) -> int:
        """Bytes streamed from DDR across the whole GEMM.

        Every A-tile is read once per N-tile column, every B-tile once
        per M-tile row; C is read+written once.
        """
        e = self.bytes_per_element
        a = self.m * self.k * self.tiles_n * e
        b = self.k * self.n * self.tiles_m * e
        c = 2 * self.m * self.n * e
        return a + b + c


def plan_gemm(m: int, n: int, k: int, *,
              bytes_per_element: int = 2,
              shaves: int = 12,
              cmx_slice_bytes: int = int(CMX_SLICE_BYTES)) -> GemmPlan:
    """Choose the largest square tile whose (A,B,C) set fits a slice.

    Each SHAVE works out of its affinity slice (the Ionica design), so
    the budget is one 128 KB slice, half reserved for double buffering.
    """
    if min(m, n, k) < 1:
        raise CompileError("GEMM dimensions must be >= 1")
    if shaves < 1:
        raise CompileError("shaves must be >= 1")
    budget = cmx_slice_bytes // 2
    # 3 tiles of t*t elements must fit: t = sqrt(budget / (3*e)).
    t = int(np.sqrt(budget / (3 * bytes_per_element)))
    t = max(8, min(t, m, n, k))
    return GemmPlan(
        m=m, n=n, k=k, tile=t, bytes_per_element=bytes_per_element,
        shaves=shaves,
        tiles_m=-(-m // t), tiles_n=-(-n // t), tiles_k=-(-k // t))


def gemm(a: np.ndarray, b: np.ndarray,
         policy: PrecisionPolicy | None = None) -> np.ndarray:
    """Functional GEMM under a precision policy.

    FP16 policy rounds the inputs and the result through binary16
    (accumulation stays FP32, like the VAU's wide accumulators).
    """
    policy = policy or PrecisionPolicy.fp16()
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise CompileError(
            f"incompatible GEMM shapes {a.shape} x {b.shape}")
    aq = policy.quantize_activation_array(a)
    bq = policy.quantize_activation_array(b)
    return policy.quantize_activation_array(aq @ bq)


def simulate_gemm(chip: Myriad2, plan: GemmPlan,
                  efficiency: float = 0.7) -> Event:
    """Run the planned GEMM on the chip model (process event).

    The event's value is the elapsed seconds.  Efficiency 0.7 reflects
    the hand-tuned inner kernels the Ionica study describes (better
    than the generic inference kernels, below peak because of tile
    edges and pipeline fill).
    """
    total_tiles = plan.tiles_m * plan.tiles_n * plan.tiles_k
    per_tile_macs = plan.tile ** 3
    e = plan.bytes_per_element
    per_tile = KernelWorkload(
        macs=per_tile_macs,
        load_bytes=2 * plan.tile * plan.tile * e,   # A and B tiles
        store_bytes=plan.tile * plan.tile * e,      # C writeback
        setup_cycles=200,
    )
    kernel = ComputeKernel(
        name=f"lama_gemm_{plan.m}x{plan.n}x{plan.k}",
        per_item=per_tile,
        work_items=total_tiles,
        efficiency=efficiency,
        fp16=(e == 2),
    )
    launcher = KernelLauncher(chip)
    return launcher.launch(kernel, shaves=plan.shaves)


def gemm_gflops_per_watt(plan: GemmPlan, seconds: float,
                         watts: float) -> tuple[float, float]:
    """(Gflops, Gflops/W) for a completed GEMM — the Ionica metric."""
    if seconds <= 0 or watts <= 0:
        raise CompileError("seconds and watts must be positive")
    gflops = plan.flops / seconds / 1e9
    return gflops, gflops / watts
