"""MDK — the Movidius Development Kit analogue.

The paper's §II-B notes that "fine-grained general-purpose computing
using C/C++ is also possible through the Movidius Development Kit
(MDK)", which "enables OpenCL support and provides several optimized
libraries designed for the Myriad 2 VPU chip (e.g., LAMA, a linear
algebra library)" — and §VII declares exploring it the paper's future
work, citing Ionica & Gregg's Myriad-1 DGEMM study [26] as the model.

This package implements that future-work direction on the simulator:

* :mod:`kernels` — general-purpose SHAVE kernel descriptors and a
  launcher that fans work-groups across the SHAVE array (with the
  per-kernel profiler the MDK's tooling provides);
* :mod:`lama` — a LAMA-style GEMM: CMX tile planning, cycle estimates,
  functional NumPy execution under a precision policy, and the
  Gflops / Gflops-per-Watt analysis of the Ionica study;
* :mod:`opencl` — a minimal OpenCL-flavoured host API (context,
  buffers, command queue, events) over the simulation kernel.
"""

from repro.mdk.kernels import (
    ComputeKernel,
    KernelLauncher,
    KernelProfile,
)
from repro.mdk.lama import (
    GemmPlan,
    gemm,
    gemm_gflops_per_watt,
    plan_gemm,
    simulate_gemm,
)
from repro.mdk.opencl import Buffer, CommandQueue, Context

__all__ = [
    "ComputeKernel",
    "KernelLauncher",
    "KernelProfile",
    "GemmPlan",
    "gemm",
    "gemm_gflops_per_watt",
    "plan_gemm",
    "simulate_gemm",
    "Buffer",
    "CommandQueue",
    "Context",
]
