"""General-purpose SHAVE compute kernels.

A :class:`ComputeKernel` describes one data-parallel kernel as the MDK
sees it: a per-work-item cost (MACs / element ops / bytes moved) and a
global work size.  The :class:`KernelLauncher` fans work-groups across
a chip's SHAVE array as simulation processes, records per-kernel
profiles (the MDK ships a profiler; so do we) and keeps the chip's
power islands honest while kernels run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from repro.errors import SimulationError
from repro.sim.core import Event
from repro.vpu.myriad2 import Myriad2
from repro.vpu.shave import KernelWorkload


@dataclass(frozen=True)
class ComputeKernel:
    """A data-parallel kernel description.

    ``per_item`` is the cost of one work-item; ``work_items`` the
    global size.  ``efficiency`` de-rates the VAU exactly as the
    inference compiler's per-layer efficiencies do.
    """

    name: str
    per_item: KernelWorkload
    work_items: int
    efficiency: float = 0.6
    fp16: bool = True

    def __post_init__(self) -> None:
        if self.work_items < 1:
            raise SimulationError(
                f"{self.name}: work_items must be >= 1")
        if not 0.0 < self.efficiency <= 1.0:
            raise SimulationError(
                f"{self.name}: efficiency must be in (0, 1]")

    def total_macs(self) -> int:
        """MACs across the whole global work size."""
        return self.per_item.macs * self.work_items


@dataclass
class KernelProfile:
    """Per-kernel execution record (the MDK profiler's view)."""

    name: str
    launches: int = 0
    total_seconds: float = 0.0
    total_macs: int = 0
    shaves_used: list[int] = field(default_factory=list)

    def gflops(self, flops_per_mac: int = 2) -> float:
        """Achieved GFLOP/s over all launches."""
        if self.total_seconds <= 0:
            return 0.0
        return self.total_macs * flops_per_mac / self.total_seconds / 1e9


class KernelLauncher:
    """Runs :class:`ComputeKernel` instances on a Myriad 2 model."""

    def __init__(self, chip: Myriad2) -> None:
        self.chip = chip
        self.profiles: dict[str, KernelProfile] = {}

    def launch(self, kernel: ComputeKernel,
               shaves: int | None = None) -> Event:
        """Launch *kernel* on up to *shaves* SHAVEs (process event)."""
        available = len(self.chip.shaves)
        n = available if shaves is None else shaves
        if not 1 <= n <= available:
            raise SimulationError(
                f"shaves must be in [1, {available}], got {n}")
        return self.chip.env.process(self._run(kernel, n))

    def _run(self, kernel: ComputeKernel,
             shaves: int) -> Generator[Event, None, float]:
        env = self.chip.env
        used = min(shaves, kernel.work_items)
        # Split the global work across SHAVEs; the critical path is
        # the largest share (ceil split).
        items_per_shave = -(-kernel.work_items // used)
        per_shave = KernelWorkload(
            macs=kernel.per_item.macs * items_per_shave,
            element_ops=kernel.per_item.element_ops * items_per_shave,
            load_bytes=kernel.per_item.load_bytes * items_per_shave,
            store_bytes=kernel.per_item.store_bytes * items_per_shave,
            setup_cycles=kernel.per_item.setup_cycles,
        )
        cycles = self.chip.shaves[0].kernel_cycles(
            per_shave, fp16=kernel.fp16, efficiency=kernel.efficiency)
        seconds = self.chip.clock.to_seconds(cycles)

        for i in range(used):
            self.chip.islands.power_on(f"shave{i}")
        self.chip.islands.power_on("cmx")
        try:
            yield env.timeout(seconds)
            for i in range(used):
                self.chip.shaves[i].record_execution(cycles)
        finally:
            for i in range(used):
                self.chip.islands.power_off(f"shave{i}")
            self.chip.islands.power_off("cmx")

        profile = self.profiles.setdefault(
            kernel.name, KernelProfile(kernel.name))
        profile.launches += 1
        profile.total_seconds += seconds
        profile.total_macs += kernel.total_macs()
        profile.shaves_used.append(used)
        return seconds
