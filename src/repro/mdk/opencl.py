"""Minimal OpenCL-flavoured host API over the simulator.

The MDK "enables OpenCL support" (paper §II-B); this module provides
the familiar host-side shapes — :class:`Context`, :class:`Buffer`,
:class:`CommandQueue` with events — mapped onto the chip model:
buffers live in simulated DDR, kernel enqueues become SHAVE launches,
and ``finish()`` drains the queue on the simulated clock.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.errors import SimulationError
from repro.mdk.kernels import ComputeKernel, KernelLauncher
from repro.sim.core import Environment, Event
from repro.vpu.myriad2 import Myriad2


class Buffer:
    """A device buffer resident in the chip's DDR."""

    def __init__(self, context: "Context", nbytes: int) -> None:
        if nbytes < 1:
            raise SimulationError("buffer size must be >= 1")
        self.context = context
        self.nbytes = nbytes
        context.chip.ddr.alloc(nbytes)
        self._released = False

    def release(self) -> None:
        """Free the DDR reservation (idempotent)."""
        if not self._released:
            self.context.chip.ddr.release(self.nbytes)
            self._released = True


class Context:
    """Owns one device (chip) and its buffers."""

    def __init__(self, env: Environment,
                 chip: Optional[Myriad2] = None) -> None:
        self.env = env
        self.chip = chip or Myriad2(env)
        self.buffers: list[Buffer] = []

    def alloc_buffer(self, nbytes: int) -> Buffer:
        """Create a device buffer."""
        buf = Buffer(self, nbytes)
        self.buffers.append(buf)
        return buf

    def release_all(self) -> None:
        """Release every buffer owned by this context."""
        for buf in self.buffers:
            buf.release()
        self.buffers.clear()


class CommandQueue:
    """In-order command queue: kernel enqueues and DMA transfers."""

    def __init__(self, context: Context) -> None:
        self.context = context
        self.launcher = KernelLauncher(context.chip)
        self._tail: Optional[Event] = None
        self.enqueued = 0

    def _chain(self, make_event) -> Event:
        """Serialise behind the current tail (in-order semantics)."""
        env = self.context.env
        prev = self._tail

        def runner() -> Generator[Event, None, None]:
            if prev is not None and not prev.processed:
                yield prev
            yield make_event()

        proc = env.process(runner())
        self._tail = proc
        self.enqueued += 1
        return proc

    def enqueue_kernel(self, kernel: ComputeKernel,
                       shaves: int | None = None) -> Event:
        """Enqueue a SHAVE kernel; returns its completion event."""
        return self._chain(lambda: self.launcher.launch(kernel, shaves))

    def enqueue_write(self, buffer: Buffer,
                      nbytes: int | None = None) -> Event:
        """Host -> device transfer through the chip DMA."""
        n = buffer.nbytes if nbytes is None else nbytes
        if n > buffer.nbytes:
            raise SimulationError(
                f"write of {n} bytes exceeds buffer {buffer.nbytes}")
        dma = self.context.chip.dma
        return self._chain(lambda: dma.transfer(n, to_ddr=True))

    def enqueue_read(self, buffer: Buffer,
                     nbytes: int | None = None) -> Event:
        """Device -> host transfer through the chip DMA."""
        n = buffer.nbytes if nbytes is None else nbytes
        if n > buffer.nbytes:
            raise SimulationError(
                f"read of {n} bytes exceeds buffer {buffer.nbytes}")
        dma = self.context.chip.dma
        return self._chain(lambda: dma.transfer(n, to_ddr=False))

    def finish(self) -> Event:
        """Event that fires when everything enqueued so far is done."""
        env = self.context.env
        tail = self._tail

        def drain() -> Generator[Event, None, None]:
            if tail is not None and not tail.processed:
                yield tail

        return env.process(drain())
