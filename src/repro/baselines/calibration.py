"""Calibration anchors for the baseline device latency models.

The paper measures (§IV-A, Fig. 6):

=========  ==============  ==================
device     batch-1 /image  batch-8 /image
=========  ==============  ==================
CPU (MKL)  26.0 ms         22.7 ms (44.0 i/s)
GPU (cuDNN) 25.9 ms        13.5 ms (74.2 i/s)
=========  ==============  ==================

Both devices fit a two-parameter Amdahl-style model

    per_image_seconds(b) = serial + parallel / b

which the paper's own projection figure validates: extrapolated to
batch 16 the model yields 44.5 img/s (CPU) and 79.4 img/s (GPU) — the
paper's Fig. 8b reports 44.5 and 79.9.  ``serial`` captures the
per-image GEMM work that batching cannot amortise; ``parallel`` the
framework overhead, weight re-streaming and kernel-launch costs that a
batch shares.

Latencies scale linearly in the network's MAC count relative to
paper-scale GoogLeNet, so the same models serve the reduced-geometry
variants used by functional experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError

#: MACs of one 224x224 inference of the paper's GoogLeNet, as measured
#: on our topology builder (tests pin it to [1.2e9, 2.0e9]).
REFERENCE_GOOGLENET_MACS = 1_602_722_536


def mac_scale(macs: int) -> float:
    """Timing scale of a workload relative to paper-scale GoogLeNet.

    The host latency models are calibrated on the full network;
    latency scales linearly in MAC count, so a network *slice* (the
    front or back half of a split placement) runs at this fraction of
    the calibrated times.
    """
    if macs < 0:
        raise SimulationError(f"macs must be >= 0, got {macs}")
    return macs / REFERENCE_GOOGLENET_MACS


@dataclass(frozen=True)
class BatchLatencyModel:
    """Amdahl-style per-image latency model, anchored at batch 1 and 8."""

    serial_s: float
    parallel_s: float
    max_batch: int = 64

    def __post_init__(self) -> None:
        if self.serial_s < 0 or self.parallel_s < 0:
            raise SimulationError("latency components must be >= 0")
        if self.max_batch < 1:
            raise SimulationError("max_batch must be >= 1")

    def per_image_seconds(self, batch: int, mac_scale: float = 1.0) -> float:
        """Per-image latency at the given batch size."""
        if not 1 <= batch <= self.max_batch:
            raise SimulationError(
                f"batch must be in [1, {self.max_batch}], got {batch}")
        if mac_scale <= 0:
            raise SimulationError("mac_scale must be positive")
        return (self.serial_s + self.parallel_s / batch) * mac_scale

    def batch_seconds(self, batch: int, mac_scale: float = 1.0) -> float:
        """Wall time for one whole batch."""
        return self.per_image_seconds(batch, mac_scale) * batch

    def throughput(self, batch: int, mac_scale: float = 1.0) -> float:
        """Images per second at the given batch size."""
        return 1.0 / self.per_image_seconds(batch, mac_scale)

    @staticmethod
    def from_anchors(t1_s: float, t8_s: float,
                     max_batch: int = 64) -> "BatchLatencyModel":
        """Fit (serial, parallel) from per-image times at batch 1 and 8."""
        if t8_s > t1_s:
            raise SimulationError(
                "batch-8 per-image time must not exceed batch-1 time")
        parallel = (t1_s - t8_s) * 8.0 / 7.0
        serial = t1_s - parallel
        return BatchLatencyModel(serial, parallel, max_batch)


#: Caffe-MKL on 2x Xeon E5-2609v2: 26.0 ms -> 22.7 ms/image.
CPU_LATENCY = BatchLatencyModel.from_anchors(26.0e-3, 22.7e-3)

#: Caffe-cuDNN on Quadro K4000: 25.9 ms -> 13.5 ms/image.
GPU_LATENCY = BatchLatencyModel.from_anchors(25.9e-3, 13.5e-3)
