"""Reference CPU and GPU inference devices.

The paper compares the multi-VPU rig against two host-side baselines:

* Caffe-MKL (v1.0.7) on 2x Intel Xeon E5-2609v2 — FP32, classic batch
  processing, MKL2017 engine (:mod:`repro.baselines.cpu`);
* Caffe-cuDNN (v0.16.4) on an NVIDIA Quadro K4000 — FP32, CUDA 9 /
  cuDNN 7 (:mod:`repro.baselines.gpu`).

Both run the network *functionally* in FP32 (they share the NumPy
substrate) while their latency comes from calibrated batch-scaling
models anchored to the paper's measured numbers
(:mod:`repro.baselines.calibration`).
"""

from repro.baselines.device import InferenceDevice
from repro.baselines.cpu import CPUDevice
from repro.baselines.gpu import GPUDevice
from repro.baselines.calibration import (
    BatchLatencyModel,
    CPU_LATENCY,
    GPU_LATENCY,
    REFERENCE_GOOGLENET_MACS,
)

__all__ = [
    "InferenceDevice",
    "CPUDevice",
    "GPUDevice",
    "BatchLatencyModel",
    "CPU_LATENCY",
    "GPU_LATENCY",
    "REFERENCE_GOOGLENET_MACS",
]
