"""The Caffe-MKL CPU baseline.

Models the paper's CPU target: two four-core Intel Xeon E5-2609v2 at
2.5 GHz (no hyper-threading, no turbo) running the Intel-optimised
Caffe fork (v1.0.7) with MKL 2018.1 and the "MKL2017" engine.  The
E5-2609v2 has AVX but no FMA, so its practical GEMM roofline is
8 cores x 8 SP FLOPs x 2.5 GHz = 160 GFLOP/s; GoogLeNet's ~3.2 GFLOP
at realistic MKL efficiency lands in the paper's measured 26 ms — the
anchored latency model encodes exactly that measurement and its weak
batch scaling (Fig. 6b: only 1.1x at batch 8).
"""

from __future__ import annotations

from repro.baselines.calibration import CPU_LATENCY, BatchLatencyModel
from repro.baselines.device import InferenceDevice
from repro.nn.graph import Network
from repro.sim.core import Environment


class CPUDevice(InferenceDevice):
    """2x Xeon E5-2609v2 running Caffe-MKL (FP32)."""

    name = "cpu"
    #: TDP of the Xeon E5-2609v2 (the paper's §V figure).
    tdp_watts = 80.0
    cores = 8
    freq_hz = 2.5e9
    sockets = 2

    def __init__(self, env: Environment, network: Network,
                 latency_model: BatchLatencyModel = CPU_LATENCY,
                 functional: bool = True,
                 jitter: float = 0.0) -> None:
        super().__init__(env, network, latency_model, functional,
                         jitter=jitter)
