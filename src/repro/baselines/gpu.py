"""The Caffe-cuDNN GPU baseline.

Models the paper's GPU target: an NVIDIA Quadro K4000 (Kepler GK106,
768 CUDA cores, 3 GB GDDR5, ~810 MHz) running the NVIDIA Caffe fork
(v0.16.4) with CUDA 9.0 / cuDNN 7.0.5.  Kepler-era cuDNN leaves much
of the 1.2 TFLOP/s peak on the table at batch 1 (kernel launch and
occupancy limits), which is why the paper measures 25.9 ms at batch 1
improving 1.9x by batch 8 — the anchored model encodes that measured
curve.
"""

from __future__ import annotations

from repro.baselines.calibration import GPU_LATENCY, BatchLatencyModel
from repro.baselines.device import InferenceDevice
from repro.nn.graph import Network
from repro.sim.core import Environment


class GPUDevice(InferenceDevice):
    """NVIDIA Quadro K4000 running Caffe-cuDNN (FP32)."""

    name = "gpu"
    #: Board power of the Quadro K4000 (the paper's §V figure).
    tdp_watts = 80.0
    cuda_cores = 768
    memory_bytes = 3 * 1024 ** 3
    freq_hz = 810e6

    def __init__(self, env: Environment, network: Network,
                 latency_model: BatchLatencyModel = GPU_LATENCY,
                 functional: bool = True,
                 jitter: float = 0.0) -> None:
        super().__init__(env, network, latency_model, functional,
                         jitter=jitter)

    def fits_in_memory(self, batch: int) -> bool:
        """Whether activations + weights of a batch fit the 3 GB card."""
        weights = self.network.total_param_bytes(4)
        shapes = self.network.infer_shapes(batch=batch)
        activations = sum(s.count for s in shapes.values()) * 4
        return weights + activations <= self.memory_bytes
