"""Common interface of host-side inference devices.

CPU and GPU baselines share the behaviour: Caffe-style batch
processing (one blocking call per batch), FP32 functional execution on
the NumPy substrate, simulated latency from a calibrated
:class:`~repro.baselines.calibration.BatchLatencyModel`, and a TDP
figure for the throughput-per-Watt analysis.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.baselines.calibration import BatchLatencyModel, mac_scale
from repro.errors import SimulationError
from repro.nn.graph import Network
from repro.numerics.quant import PrecisionPolicy
from repro.sim.core import Environment, Event


class InferenceDevice:
    """A host-side batch-processing inference device."""

    #: Overridden by subclasses.
    name = "device"
    tdp_watts = 0.0

    def __init__(self, env: Environment, network: Network,
                 latency_model: BatchLatencyModel,
                 functional: bool = True,
                 jitter: float = 0.0,
                 jitter_seed: int = 0) -> None:
        if jitter < 0 or jitter >= 0.5:
            raise SimulationError(
                f"jitter must be in [0, 0.5), got {jitter}")
        self.env = env
        self.network = network
        self.latency_model = latency_model
        self.functional = functional
        #: Latency scales with workload size relative to paper GoogLeNet.
        self.mac_scale = mac_scale(network.total_macs(1))
        #: Relative std-dev of per-batch latency noise (testbed noise
        #: model; 0 keeps the simulation deterministic).
        self.jitter = float(jitter)
        self._jitter_rng = np.random.default_rng(jitter_seed)
        self.batches_run = 0
        self.images_run = 0

    # -- timing ------------------------------------------------------------
    def batch_seconds(self, batch: int) -> float:
        """Simulated wall time of one batch."""
        return self.latency_model.batch_seconds(batch, self.mac_scale)

    def per_image_seconds(self, batch: int) -> float:
        """Simulated per-image latency at a batch size."""
        return self.latency_model.per_image_seconds(batch, self.mac_scale)

    def throughput(self, batch: int) -> float:
        """Simulated images/second at a batch size."""
        return self.latency_model.throughput(batch, self.mac_scale)

    # -- execution -------------------------------------------------------------
    def run_batch(self, x: Optional[np.ndarray],
                  batch: Optional[int] = None) -> Event:
        """Run one batch as a DES process.

        ``x`` is the NCHW input batch (or None in non-functional
        timing-only mode, in which case ``batch`` gives the size).
        The event's value is the softmax output (or None).
        """
        if x is None and batch is None:
            raise SimulationError(
                "run_batch needs either data or an explicit batch size")
        n = int(x.shape[0]) if x is not None else int(batch)  # type: ignore[arg-type]
        if x is not None and batch is not None and batch != n:
            raise SimulationError(
                f"batch={batch} disagrees with data batch {n}")
        return self.env.process(self._run(x, n))

    def _run(self, x: Optional[np.ndarray],
             n: int) -> Generator[Event, None, Optional[np.ndarray]]:
        seconds = self.batch_seconds(n)
        if self.jitter > 0:
            # Truncated multiplicative noise; never negative time.
            factor = max(0.5, 1.0 + self._jitter_rng.normal(
                0.0, self.jitter))
            seconds *= factor
        yield self.env.timeout(seconds)
        self.batches_run += 1
        self.images_run += n
        if not self.functional or x is None:
            return None
        return self.network.forward(x, PrecisionPolicy.fp32())

    def predict(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Synchronous functional prediction (no simulation clock).

        Used by the error-rate experiments, where only the outputs
        matter; FP32 is the reference precision of both baselines.
        """
        return self.network.predict(x, PrecisionPolicy.fp32())

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} tdp={self.tdp_watts}W "
                f"mac_scale={self.mac_scale:.4f}>")
