"""NCS firmware image and boot protocol.

When the NCAPI opens a device it pushes a firmware image over USB and
waits for the RTOS on the RISC processors to come up (paper §II-B).
Boot cost matters only once per device per run, but modelling it keeps
the open/close lifecycle honest (and the enumeration tests exercise
it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NCAPIError
from repro.units import MB


@dataclass(frozen=True)
class FirmwareImage:
    """A loadable firmware blob."""

    version: str
    nbytes: int
    boot_seconds: float  #: RTOS bring-up time after the transfer

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise NCAPIError("firmware image must be non-empty")
        if self.boot_seconds < 0:
            raise NCAPIError("boot time must be >= 0")


#: The NCSDK version the paper pins (§IV): Neural Compute SDK
#: v1.12.00.01. The image size and bring-up latency follow the
#: MvNCAPI.mvcmd shipped with that SDK.
DEFAULT_FIRMWARE = FirmwareImage(
    version="1.12.00.01",
    nbytes=int(1.8 * MB),
    boot_seconds=0.45,
)
