"""Synchronous facade over the NCAPI.

The event-driven NCAPI is faithful to the NCSDK but requires writing
generator processes.  :class:`SyncSession` wraps one simulation
environment and drives it to completion behind every call, so a user
can classify images in four plain statements::

    sess = SyncSession(num_devices=1)
    dev = sess.open_device(0)
    graph = sess.allocate(dev, compiled_graph)
    probs, _ = sess.infer(graph, tensor)

Each call advances the simulated clock (inspectable via
:attr:`SyncSession.now`); the asynchronous overlap patterns of the
paper still require the process API.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.errors import NCAPIError
from repro.ncs.ncapi import NCAPI, DeviceHandle, GraphHandle
from repro.ncs.usb import USBTopology, paper_testbed_topology
from repro.sim.core import Environment
from repro.vpu.compiler.compile import CompiledGraph


class SyncSession:
    """One simulated bus + NCAPI, driven synchronously."""

    def __init__(self, num_devices: int = 1, functional: bool = True,
                 topology: Optional[USBTopology] = None,
                 env: Optional[Environment] = None) -> None:
        self.env = env if env is not None else Environment()
        if topology is not None and topology.env is not self.env:
            raise NCAPIError(
                "a custom topology must share the session's env — "
                "pass both: SyncSession(topology=topo, env=env)")
        topo = topology if topology is not None else \
            paper_testbed_topology(self.env, num_devices=num_devices)
        self.api = NCAPI(self.env, topo, functional=functional)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.env.now

    def open_device(self, index: int) -> DeviceHandle:
        """Boot a stick and return its handle (blocks on the clock)."""
        return self.env.run(until=self.api.open_device(index))

    def allocate(self, device: DeviceHandle,
                 graph: CompiledGraph | bytes) -> GraphHandle:
        """Ship a compiled graph (object or blob) to a device."""
        if isinstance(graph, (bytes, bytearray)):
            event = device.allocate_graph(bytes(graph))
        else:
            event = device.allocate_compiled(graph)
        return self.env.run(until=event)

    def infer(self, graph: GraphHandle,
              tensor: Optional[np.ndarray],
              user: Any = None) -> tuple[np.ndarray, Any]:
        """One blocking inference: load_tensor + get_result."""
        self.env.run(until=graph.load_tensor(tensor, user=user))
        return self.env.run(until=graph.get_result())

    def infer_batch(self, graph: GraphHandle,
                    tensors: list[Optional[np.ndarray]]
                    ) -> list[np.ndarray]:
        """Pipeline a list of tensors through one stick.

        Uses the device FIFO for load/execute overlap (the Listing-1
        pattern) while staying synchronous at the call boundary.
        """
        if not tensors:
            raise NCAPIError("infer_batch needs at least one tensor")
        results: list[np.ndarray] = []

        def pipeline():
            yield graph.load_tensor(tensors[0], user=0)
            for i, tensor in enumerate(tensors[1:], start=1):
                yield graph.load_tensor(tensor, user=i)
                result, _ = yield graph.get_result()
                results.append(result)
            result, _ = yield graph.get_result()
            results.append(result)

        self.env.run(until=self.env.process(pipeline()))
        return results
