"""NCAPI — the host-side Neural Compute API.

Mirrors the NCSDK v1 Python/C API the paper programs against
(Listing 1): device discovery, ``open_device``, ``allocate_graph``,
the *non-blocking* ``load_tensor`` and the *blocking* ``get_result``
— a decoupled pair that "resembles the MPI non-blocking interface"
(paper §II-B) and enables the computation/communication overlap that
the multi-VPU NCSw scheduler exploits.

Every operation returns a DES event; host code (a process) yields it.
``load_tensor`` completes as soon as the tensor is transferred and
queued — the inference itself proceeds in the background, exactly like
``mvncLoadTensor`` returning after scheduling.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.errors import DeviceNotFound, DeviceTimeout, NCAPIError
from repro.ncs.device import NCSDevice
from repro.ncs.enumeration import enumerate_devices
from repro.ncs.firmware import DEFAULT_FIRMWARE, FirmwareImage
from repro.ncs.usb import USBTopology
from repro.sim.core import Environment, Event
from repro.sim.monitor import TraceRecorder
from repro.vpu.compiler.compile import CompiledGraph
from repro.vpu.myriad2 import Myriad2Config


class GraphHandle:
    """Handle to a graph allocated on a device (``mvncGraph``)."""

    def __init__(self, device: NCSDevice, graph: CompiledGraph) -> None:
        self._device = device
        self._graph = graph
        self._deallocated = False

    @property
    def name(self) -> str:
        """Name of the allocated graph."""
        return self._graph.name

    @property
    def device(self) -> NCSDevice:
        """The underlying stick (health checks, fault injection)."""
        return self._device

    @property
    def device_id(self) -> str:
        """Bus identifier of the stick this graph lives on."""
        return self._device.device_id

    @property
    def device_alive(self) -> bool:
        """False once the stick has died (unplug, hang-kill, thermal)."""
        return not self._device.dead

    def fail_device(self, kind: str, detail: str = "") -> None:
        """Declare the stick dead from the host side.

        A fault-tolerant scheduler calls this when a per-call timeout
        fires: the firmware is presumed hung and the device is written
        off exactly as if it had been unplugged."""
        self._device.mark_dead(kind, detail)

    def load_tensor(self, tensor: Optional[np.ndarray],
                    user: Any = None,
                    timeout: Optional[float] = None) -> Event:
        """Non-blocking input submission (``mvncLoadTensor``).

        The returned event completes once the tensor is on the device
        and queued for execution — *not* when inference finishes.
        With *timeout* (seconds) the call fails with
        :class:`DeviceTimeout` if it has not completed by then; note
        FIFO back-pressure on a healthy device also counts against
        the deadline, so pick timeouts well above one inference.
        """
        self._check()
        event = self._device.submit(tensor, user)
        if timeout is not None:
            event = self._deadline("load_tensor", event, timeout)
        return self._spanned("load_tensor", event)

    def get_result(self, timeout: Optional[float] = None) -> Event:
        """Blocking result retrieval (``mvncGetResult``).

        Event value is ``(result_fp16_array, user_object)`` for the
        oldest completed inference.  With *timeout* the wait fails
        with :class:`DeviceTimeout` instead of blocking forever — the
        only way to detect a hung firmware.
        """
        self._check()
        event = self._device.collect()
        if timeout is not None:
            event = self._deadline("get_result", event, timeout)
        return self._spanned("get_result", event)

    def _deadline(self, name: str, event: Event,
                  timeout: float) -> Event:
        """Race *event* against a timeout (process event)."""
        if timeout <= 0:
            raise NCAPIError(
                f"timeout must be positive, got {timeout}")
        env = self._device.env

        def _race():
            clock = env.timeout(timeout)
            result = yield env.any_of([event, clock])
            if event.triggered:
                return result[event]
            # Deadline expired: the call is abandoned.  If the pending
            # device-side process later fails (e.g. the stick is then
            # written off and every in-flight call aborts), nobody is
            # listening any more — defuse it so the kernel does not
            # surface an unhandled error.
            if not event.processed:
                def _defuse(ev: Event) -> None:
                    ev._defused = True
                event.add_callback(_defuse)
            raise DeviceTimeout(
                f"{self._device.device_id}: {name} exceeded "
                f"{timeout}s deadline")

        return env.process(_race())

    def _spanned(self, name: str, event: Event) -> Event:
        """Wrap an API call event in a host-side tracer span.

        The span opens at call time and closes when the event fires,
        so FIFO back-pressure and result waits are visible on the
        ``<device>/host`` track of the timeline.
        """
        obs = self._device.env.obs
        if obs is not None:
            span = obs.tracer.begin(
                name, track=f"{self._device.device_id}/host")
            if event.processed:  # already processed: zero-length
                obs.tracer.end(span)
            else:
                event.add_callback(lambda _ev: obs.tracer.end(span))
        return event

    def time_taken(self) -> list[float]:
        """Per-inference device execution times so far, in seconds."""
        return list(self._device.inference_times)

    def layer_times(self) -> dict[str, float]:
        """Per-layer seconds of the most recent inference.

        The ``GetGraphOption(TIME_TAKEN)`` payload of the NCSDK; empty
        before the first inference completes.
        """
        return dict(self._device.last_per_layer or {})

    def deallocate(self) -> None:
        """Release the graph (``mvncDeallocateGraph``)."""
        self._check()
        self._device.deallocate_graph()
        self._deallocated = True

    def _check(self) -> None:
        if self._deallocated:
            raise NCAPIError("graph handle has been deallocated")


class DeviceHandle:
    """Handle to an opened NCS device (``mvncDevice``)."""

    def __init__(self, device: NCSDevice) -> None:
        self._device = device

    @property
    def device_id(self) -> str:
        """Bus identifier of the underlying stick."""
        return self._device.device_id

    @property
    def chip(self):
        """The stick's Myriad 2 chip model (for instrumentation)."""
        return self._device.chip

    def allocate_graph(self, blob: bytes) -> Event:
        """Validate + transfer a compiled graph blob (process event).

        Event value is a :class:`GraphHandle`.
        """
        graph = CompiledGraph.from_bytes(blob)
        env = self._device.env

        def _alloc():
            yield self._device.allocate_graph(graph)
            return GraphHandle(self._device, graph)

        return env.process(_alloc())

    def allocate_compiled(self, graph: CompiledGraph) -> Event:
        """Allocate a :class:`CompiledGraph` directly (skips the blob
        round-trip; used by benchmarks at paper scale where 14 MB of
        weights would be pickled per run for no benefit)."""
        env = self._device.env

        def _alloc():
            yield self._device.allocate_graph(graph)
            return GraphHandle(self._device, graph)

        return env.process(_alloc())

    def close(self) -> None:
        """Close the device (``mvncCloseDevice``)."""
        self._device.close()


class NCAPI:
    """Top-level API object: enumeration and device opening."""

    def __init__(self, env: Environment, topology: USBTopology,
                 firmware: FirmwareImage = DEFAULT_FIRMWARE,
                 chip_config: Optional[Myriad2Config] = None,
                 functional: bool = True,
                 trace: Optional[TraceRecorder] = None) -> None:
        self.env = env
        self.topology = topology
        self._devices = enumerate_devices(
            env, topology, firmware=firmware, chip_config=chip_config,
            functional=functional, trace=trace)

    def device_names(self) -> list[str]:
        """IDs of every attached stick (``mvncGetDeviceName`` loop)."""
        return [d.device_id for d in self._devices]

    def open_device(self, index: int) -> Event:
        """Boot device *index*; event value is a :class:`DeviceHandle`."""
        if not 0 <= index < len(self._devices):
            raise DeviceNotFound(
                f"device index {index} out of range "
                f"[0, {len(self._devices)})")
        device = self._devices[index]

        def _open():
            yield device.boot()
            return DeviceHandle(device)

        return self.env.process(_open())

    @property
    def devices(self) -> list[NCSDevice]:
        """Raw device objects (for tests and instrumentation)."""
        return list(self._devices)

    def live_devices(self) -> list[NCSDevice]:
        """Devices still healthy (not dead / hot-unplugged)."""
        from repro.ncs.enumeration import live_devices

        return live_devices(self._devices)
