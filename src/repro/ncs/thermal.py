"""Thermal model of the NCS stick.

The paper's §V flags that "actual power measurements would be required
in future work to understand the practical differences"; one practical
difference a fanless USB stick exhibits is *thermal throttling* under
sustained load (the NCS's firmware down-clocks the media clock when
the SoC runs hot).  This module provides a first-order RC thermal
model with hysteretic throttling that the NCS device model can
optionally carry — disabled by default, since the paper's runs are
short enough not to hit it.

Physics: a single thermal mass with resistance R (°C/W) to ambient
and time constant tau; temperature relaxes exponentially toward
``ambient + P * R``:

    T(t + dt) = T_inf + (T(t) - T_inf) * exp(-dt / tau)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class ThermalConfig:
    """RC thermal parameters of a fanless NCS stick."""

    ambient_c: float = 25.0
    #: Junction-to-ambient resistance; a bare USB stick dissipates
    #: poorly, so 2.5 W sustained approaches ~75 C.
    resistance_c_per_w: float = 20.0
    time_constant_s: float = 60.0
    throttle_temp_c: float = 70.0
    recover_temp_c: float = 62.0
    #: Media-clock scale while throttled.
    throttle_scale: float = 0.6
    #: Hard over-temperature cut-off: past this the firmware kills the
    #: stick outright (latched — a power cycle is needed).  The default
    #: sits above the 2.5 W steady state (75 C), so it is unreachable
    #: without fault injection or a pathological config.
    shutdown_temp_c: float = 90.0

    def __post_init__(self) -> None:
        if self.resistance_c_per_w <= 0 or self.time_constant_s <= 0:
            raise SimulationError("thermal R and tau must be positive")
        if not 0.0 < self.throttle_scale <= 1.0:
            raise SimulationError(
                "throttle_scale must be in (0, 1]")
        if self.recover_temp_c >= self.throttle_temp_c:
            raise SimulationError(
                "recover temperature must sit below the throttle "
                "threshold (hysteresis)")
        if self.shutdown_temp_c <= self.throttle_temp_c:
            raise SimulationError(
                "shutdown temperature must sit above the throttle "
                "threshold")


class ThermalModel:
    """Tracks stick temperature against the simulated clock."""

    def __init__(self, config: ThermalConfig | None = None) -> None:
        self.config = config or ThermalConfig()
        self._temp = self.config.ambient_c
        self._last_update = 0.0
        self._throttled = False
        self._shut_down = False
        self.throttle_events = 0

    @property
    def temperature_c(self) -> float:
        """Current stick temperature in degrees Celsius."""
        return self._temp

    @property
    def throttled(self) -> bool:
        """Whether the firmware is currently holding the clock down."""
        return self._throttled

    @property
    def shut_down(self) -> bool:
        """Whether the over-temperature cut-off has tripped (latched)."""
        return self._shut_down

    def force_temperature(self, temp_c: float,
                          at: float | None = None) -> None:
        """Override the junction temperature (fault injection hook).

        Sets the state directly — e.g. a blocked vent or runaway load
        — and re-evaluates the throttle/shutdown thresholds at once.
        Passing ``at`` also advances the model clock so the forced
        temperature does not immediately decay through a stale ``dt``.
        """
        self._temp = float(temp_c)
        if at is not None:
            if at < self._last_update:
                raise SimulationError(
                    f"time went backwards: {at} < {self._last_update}")
            self._last_update = at
        self._evaluate_thresholds()

    def update(self, now: float, power_w: float) -> None:
        """Advance the thermal state to time *now* at *power_w* draw.

        Call with the power that was drawn since the previous update.
        """
        if now < self._last_update:
            raise SimulationError(
                f"time went backwards: {now} < {self._last_update}")
        if power_w < 0:
            raise SimulationError("power must be >= 0")
        cfg = self.config
        dt = now - self._last_update
        self._last_update = now
        if dt > 0:
            t_inf = cfg.ambient_c + power_w * cfg.resistance_c_per_w
            decay = math.exp(-dt / cfg.time_constant_s)
            self._temp = t_inf + (self._temp - t_inf) * decay
        self._evaluate_thresholds()

    def _evaluate_thresholds(self) -> None:
        """Latch shutdown and advance the hysteretic throttle state."""
        cfg = self.config
        if self._temp >= cfg.shutdown_temp_c:
            self._shut_down = True
        if self._throttled:
            if self._temp <= cfg.recover_temp_c:
                self._throttled = False
        elif self._temp >= cfg.throttle_temp_c:
            self._throttled = True
            self.throttle_events += 1

    def frequency_scale(self) -> float:
        """Current media-clock multiplier (1.0 when cool)."""
        return self.config.throttle_scale if self._throttled else 1.0

    def steady_state_c(self, power_w: float) -> float:
        """Equilibrium temperature at a sustained power draw."""
        return (self.config.ambient_c
                + power_w * self.config.resistance_c_per_w)
