"""The NCS stick: firmware, FIFOs and the RISC runtime scheduler.

One :class:`NCSDevice` owns a :class:`~repro.vpu.myriad2.Myriad2` chip
and mediates every host interaction through the USB topology:

* ``boot`` — firmware transfer + RTOS bring-up;
* ``allocate_graph`` — graph-file transfer + DDR residency;
* ``submit`` — input-tensor transfer into the input FIFO (the
  device-side half of ``mvncLoadTensor``);
* the scheduler process — one of the two RISC cores, which pops the
  input FIFO, runs the SHAVE array and pushes results to the output
  FIFO (paper Fig. 2's "runtime scheduler");
* ``collect`` — result transfer back to the host (the device-side
  half of ``mvncGetResult``).

Functional execution: when ``functional=True`` the device really runs
the compiled network in FP16 on the submitted tensor; when False it
produces zeros — used by the timing benchmarks, where paper-scale
NumPy inference would dominate wall-clock for no measurement benefit.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Generator, Optional

import numpy as np

from repro.errors import (
    DeviceBusy,
    DeviceClosed,
    DeviceLost,
    NCAPIError,
    ThermalShutdown,
    USBError,
)
from repro.numerics.quant import PrecisionPolicy
from repro.sim.core import Environment, Event, Interrupt
from repro.sim.monitor import TraceRecorder
from repro.sim.resources import Store
from repro.ncs.firmware import DEFAULT_FIRMWARE, FirmwareImage
from repro.ncs.thermal import ThermalModel
from repro.ncs.usb import USBTopology
from repro.vpu.compiler.compile import CompiledGraph
from repro.vpu.myriad2 import Myriad2, Myriad2Config

#: Depth of the inference FIFOs (NCSDK v1 allows two tensors in
#: flight per graph, enabling the load/get overlap of Listing 1).
FIFO_DEPTH = 2


@dataclass
class _Inference:
    """One queued inference travelling through the device."""

    seq: int
    tensor: Optional[np.ndarray]
    user: Any
    result: Optional[np.ndarray] = None
    submitted_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    per_layer: Optional[dict[str, float]] = None


class NCSDevice:
    """One Neural Compute Stick on the simulated bus."""

    def __init__(self, env: Environment, device_id: str,
                 topology: USBTopology,
                 firmware: FirmwareImage = DEFAULT_FIRMWARE,
                 chip_config: Myriad2Config | None = None,
                 functional: bool = True,
                 trace: Optional[TraceRecorder] = None,
                 thermal: Optional["ThermalModel"] = None) -> None:
        if device_id not in topology.devices:
            raise NCAPIError(
                f"device {device_id!r} is not attached to the topology")
        self.env = env
        self.device_id = device_id
        self.topology = topology
        self.firmware = firmware
        self.functional = functional
        self.trace = trace
        self.chip = Myriad2(env, chip_config, trace=trace,
                            name=f"{device_id}/chip")
        self.booted = False
        self.closed = False
        #: Fault state: a dead device rejects every operation with
        #: :class:`DeviceLost` (or :class:`ThermalShutdown`).
        self.dead = False
        self.failure_kind: Optional[str] = None
        self.failure_time: Optional[float] = None
        #: Event that fires when the device dies; created lazily by
        #: :meth:`enable_fault_hooks` so the default (no fault
        #: injection) path stays byte-identical.
        self._lost: Optional[Event] = None
        #: Firmware-busy window end (``submit`` raises DeviceBusy
        #: before it) and a counter of rejected submissions.
        self._busy_until = 0.0
        self.busy_rejections = 0
        self._hung = False
        self._graph: Optional[CompiledGraph] = None
        self._graph_handle: Optional[int] = None
        self._in_fifo = Store(env, capacity=FIFO_DEPTH)
        self._out_fifo = Store(env, capacity=FIFO_DEPTH)
        self._seq = itertools.count()
        self._scheduler: Optional[Event] = None
        self.inference_times: list[float] = []
        #: Per-layer seconds of the most recent inference (the NCAPI
        #: GetGraphOption(TIME_TAKEN) payload).
        self.last_per_layer: Optional[dict[str, float]] = None
        #: Optional thermal model; when set, sustained load heats the
        #: stick and throttles the media clock (see ncs.thermal).
        self.thermal = thermal
        #: Active power draw assumed while an inference runs (the NCS
        #: stick's 2.5 W peak figure).
        self.active_power_w = 2.5
        self.idle_power_w = 0.7
        #: Relative std-dev of per-inference latency noise (testbed
        #: noise model for error bars; 0 keeps runs deterministic).
        self.latency_jitter = 0.0
        import hashlib as _hashlib
        digest = _hashlib.sha256(
            f"ncs-jitter:{device_id}".encode()).digest()
        self._jitter_rng = np.random.default_rng(
            int.from_bytes(digest[:8], "little"))

    # -- lifecycle ------------------------------------------------------
    def boot(self) -> Event:
        """Load firmware and start the RTOS (process event)."""
        return self.env.process(self._boot())

    def _boot(self) -> Generator[Event, None, None]:
        self._check_open(require_boot=False)
        if self.booted:
            return
        yield self.topology.transfer(self.device_id, self.firmware.nbytes)
        yield self.env.timeout(self.firmware.boot_seconds)
        self.booted = True
        self.chip.islands.power_on("risc1")
        self.chip.islands.power_on("usb")
        self._scheduler = self.env.process(self._scheduler_loop())
        self._emit("booted", version=self.firmware.version)
        obs = self.env.obs
        if obs is not None:
            obs.tracer.instant("booted", track=self.device_id,
                               version=self.firmware.version)
            obs.power_monitor(self.device_id).record(self.idle_power_w)

    def close(self) -> None:
        """Tear the device down; subsequent operations fail."""
        self.closed = True
        self.booted = False

    def reset(self) -> Event:
        """``mvncResetDevice`` analogue (process event).

        Drops every in-flight inference, deallocates the resident
        graph, kills the runtime scheduler and re-boots the firmware.
        The device comes back ready for a fresh ``allocate_graph``.
        """
        return self.env.process(self._reset())

    def _reset(self) -> Generator[Event, None, None]:
        self._check_open(require_boot=False)
        if self._scheduler is not None and self._scheduler.is_alive:
            self._scheduler.interrupt("reset")
        self._scheduler = None
        dropped = len(self._in_fifo.items) + len(self._out_fifo.items)
        self._in_fifo = Store(self.env, capacity=FIFO_DEPTH)
        self._out_fifo = Store(self.env, capacity=FIFO_DEPTH)
        if self._graph is not None:
            assert self._graph_handle is not None
            self.chip.deallocate_graph(self._graph_handle)
            self._graph = None
            self._graph_handle = None
        self.booted = False
        self._emit("reset", dropped_inferences=dropped)
        yield self._boot_inner()

    def _boot_inner(self) -> Event:
        return self.env.process(self._boot())

    # -- fault injection & death ---------------------------------------
    def enable_fault_hooks(self) -> None:
        """Arm the lost-device race on the inference path.

        Until this is called (by a :class:`~repro.ncsw.faults.
        FaultPlan` or a fault-tolerant scheduler) ``submit`` and
        ``collect`` wait on their events directly — no extra
        simulation events, so un-faulted runs are byte-identical.
        """
        if self._lost is None:
            self._lost = Event(self.env)

    def mark_dead(self, kind: str, detail: str = "") -> None:
        """Declare the device dead (idempotent).

        Fires the lost event so every in-flight ``submit``/``collect``
        fails with :class:`DeviceLost`, kills the RISC runtime
        scheduler, and records the failure for the health report.
        """
        if self.dead:
            return
        self.dead = True
        self.failure_kind = kind
        self.failure_time = self.env.now
        if self._lost is None:
            self._lost = Event(self.env)
        if not self._lost.triggered:
            self._lost.succeed(kind)
        sched = self._scheduler
        if (sched is not None and sched.is_alive
                and sched is not self.env.active_process):
            sched.interrupt("device-dead")
        self._scheduler = None
        self._emit("device_failed", kind=kind, detail=detail)
        obs = self.env.obs
        if obs is not None:
            obs.tracer.instant("device_failed", track=self.device_id,
                               kind=kind, detail=detail)
            obs.metrics.counter("ncs.devices_failed").inc()
            obs.power_monitor(self.device_id).record(0.0)

    def inject_death(self, detail: str = "hot-unplug") -> None:
        """Kill the stick outright (hot-unplug / hardware death)."""
        if self.dead:
            return
        try:
            self.topology.detach_device(self.device_id)
        except USBError:
            pass  # already detached
        self.mark_dead("death", detail)

    def inject_hang(self, detail: str = "firmware-hang") -> None:
        """Hang the firmware: the device goes silent but stays on the
        bus.  Tensors still transfer and queue; results never come —
        only a per-call timeout (``get_result(timeout=...)``) can
        detect it."""
        if self.dead or self._hung:
            return
        self._hung = True
        sched = self._scheduler
        if (sched is not None and sched.is_alive
                and sched is not self.env.active_process):
            sched.interrupt("firmware-hang")
        self._scheduler = None
        self._emit("device_hung", detail=detail)
        obs = self.env.obs
        if obs is not None:
            obs.tracer.instant("device_hung", track=self.device_id,
                               detail=detail)

    def inject_thermal_runaway(self,
                               detail: str = "thermal-runaway") -> None:
        """Push the stick over its thermal cut-off.

        Forces the junction temperature past
        :attr:`~repro.ncs.thermal.ThermalConfig.shutdown_temp_c`; the
        model latches shutdown and the device dies through the same
        path organic over-temperature would take."""
        if self.dead:
            return
        if self.thermal is None:
            self.thermal = ThermalModel()
        cfg = self.thermal.config
        self.thermal.force_temperature(cfg.shutdown_temp_c + 5.0,
                                       at=self.env.now)
        if self.thermal.shut_down:
            self.mark_dead("thermal", detail)

    def inject_busy(self, duration: float) -> None:
        """Reject submissions with :class:`DeviceBusy` for *duration*
        seconds (transient firmware congestion)."""
        if duration < 0:
            raise NCAPIError("busy duration must be >= 0")
        self._busy_until = max(self._busy_until,
                               self.env.now + duration)

    def _dead_error(self) -> DeviceLost:
        cls = (ThermalShutdown if self.failure_kind == "thermal"
               else DeviceLost)
        return cls(f"{self.device_id} is dead "
                   f"({self.failure_kind or 'unknown'})")

    def _await_or_lost(self, event: Event
                       ) -> Generator[Event, None, Any]:
        """Wait on *event*, aborting with DeviceLost if the device
        dies first.  With fault hooks unarmed this is a plain wait."""
        if self._lost is None:
            value = yield event
            return value
        result = yield self.env.any_of([event, self._lost])
        if self._lost.triggered:
            raise self._dead_error()
        return result[event]

    # -- graph management --------------------------------------------------
    def allocate_graph(self, graph: CompiledGraph) -> Event:
        """Transfer a compiled graph and make it resident (process)."""
        return self.env.process(self._allocate(graph))

    def _allocate(self, graph: CompiledGraph
                  ) -> Generator[Event, None, None]:
        self._check_open()
        if self._graph is not None:
            raise DeviceBusy(
                f"{self.device_id}: a graph is already allocated")
        blob_bytes = (graph.weight_bytes_total
                      + 64 * 1024)  # schedule metadata
        yield self.topology.transfer(self.device_id, blob_bytes)
        self._graph_handle = self.chip.allocate_graph(graph)
        self._graph = graph
        self._emit("graph_allocated", graph=graph.name,
                   nbytes=blob_bytes)

    def deallocate_graph(self) -> None:
        """Release the resident graph."""
        self._check_open()
        if self._graph is None:
            raise NCAPIError(f"{self.device_id}: no graph allocated")
        assert self._graph_handle is not None
        self.chip.deallocate_graph(self._graph_handle)
        self._graph = None
        self._graph_handle = None

    @property
    def graph(self) -> Optional[CompiledGraph]:
        """The currently resident compiled graph, if any."""
        return self._graph

    # -- inference path ---------------------------------------------------------
    def submit(self, tensor: Optional[np.ndarray],
               user: Any = None) -> Event:
        """Device half of ``mvncLoadTensor`` (process event).

        Transfers the FP16 tensor over USB and enqueues it; completes
        when the tensor is in the input FIFO (NOT when inference is
        done).  Backpressure: if the FIFO holds :data:`FIFO_DEPTH`
        tensors, the transfer waits.
        """
        return self.env.process(self._submit(tensor, user))

    def _submit(self, tensor: Optional[np.ndarray],
                user: Any) -> Generator[Event, None, int]:
        self._check_open()
        if self.env.now < self._busy_until:
            self.busy_rejections += 1
            raise DeviceBusy(
                f"{self.device_id}: firmware busy until "
                f"{self._busy_until:.6f}s")
        graph = self._require_graph()
        nbytes = graph.input_tensor_bytes
        if tensor is not None:
            expected = (graph.input_shape.c, graph.input_shape.h,
                        graph.input_shape.w)
            if tuple(tensor.shape[-3:]) != expected:
                raise NCAPIError(
                    f"tensor shape {tensor.shape} does not match graph "
                    f"input {expected}")
        item = _Inference(seq=next(self._seq), tensor=tensor, user=user,
                          submitted_at=self.env.now)
        yield from self._await_or_lost(
            self.topology.transfer(self.device_id, nbytes))
        yield from self._await_or_lost(self._in_fifo.put(item))
        self._emit("tensor_loaded", seq=item.seq, nbytes=nbytes)
        return item.seq

    def _scheduler_loop(self) -> Generator[Event, None, None]:
        """The RISC runtime scheduler: FIFO in -> SHAVEs -> FIFO out.

        Terminated by :meth:`reset` via interrupt; in-flight work is
        dropped, like the real firmware discarding its queues.
        """
        try:
            yield from self._scheduler_body()
        except Interrupt:
            return

    def _scheduler_body(self) -> Generator[Event, None, None]:
        while not self.closed:
            item: _Inference = yield self._in_fifo.get()
            graph = self._require_graph()
            item.started_at = self.env.now
            obs = self.env.obs
            span = None
            if obs is not None:
                span = obs.tracer.begin("inference",
                                        track=self.device_id,
                                        seq=item.seq)
                obs.power_monitor(self.device_id).record(
                    self.active_power_w)
            if self.thermal is not None:
                # Idle interval since the last activity, then check
                # whether the firmware is holding the clock down.
                self.thermal.update(self.env.now, self.idle_power_w)
                if self.thermal.shut_down:
                    if obs is not None:
                        obs.tracer.end(span)
                    self.mark_dead("thermal", "over-temperature")
                    return
            per_layer = yield self.chip.run_inference(graph)
            if self.thermal is not None:
                scale = self.thermal.frequency_scale()
                if scale < 1.0:
                    # Throttled media clock stretches the execution.
                    extra = (self.env.now - item.started_at) * (
                        1.0 / scale - 1.0)
                    yield self.env.timeout(extra)
                self.thermal.update(self.env.now, self.active_power_w)
                if self.thermal.shut_down:
                    # The stick cooked itself mid-inference: the
                    # result is lost, the firmware goes dark.
                    if obs is not None:
                        obs.tracer.end(span)
                    self.mark_dead("thermal", "over-temperature")
                    return
            if self.latency_jitter > 0:
                factor = max(0.5, 1.0 + self._jitter_rng.normal(
                    0.0, self.latency_jitter))
                if factor > 1.0:
                    elapsed = self.env.now - item.started_at
                    yield self.env.timeout(elapsed * (factor - 1.0))
            item.per_layer = per_layer
            self.last_per_layer = per_layer
            item.result = self._compute_result(graph, item.tensor)
            item.finished_at = self.env.now
            self.inference_times.append(
                item.finished_at - item.started_at)
            if obs is not None:
                obs.tracer.end(span)
                obs.power_monitor(self.device_id).record(
                    self.idle_power_w)
                obs.metrics.histogram("ncs.inference_seconds").observe(
                    item.finished_at - item.started_at)
            yield self._out_fifo.put(item)
            self._emit("inference_complete", seq=item.seq,
                       seconds=item.finished_at - item.started_at)

    def _compute_result(self, graph: CompiledGraph,
                        tensor: Optional[np.ndarray]) -> np.ndarray:
        out_shape = (graph.output_shape.c, graph.output_shape.h,
                     graph.output_shape.w)
        if not self.functional or tensor is None:
            return np.zeros(out_shape, dtype=np.float16)
        x = np.asarray(tensor, dtype=np.float32)
        if x.ndim == 3:
            x = x[None]
        probs = graph.network.forward(x, PrecisionPolicy.fp16())
        return probs[0].astype(np.float16)

    def collect(self) -> Event:
        """Device half of ``mvncGetResult`` (process event).

        Completes with ``(result_array, user_object)`` after the oldest
        finished inference's output has crossed the USB link.
        """
        return self.env.process(self._collect())

    def _collect(self) -> Generator[Event, None, tuple]:
        self._check_open()
        graph = self._require_graph()
        item: _Inference = yield from self._await_or_lost(
            self._out_fifo.get())
        yield from self._await_or_lost(
            self.topology.transfer(self.device_id,
                                   graph.output_tensor_bytes))
        self._emit("result_read", seq=item.seq)
        return item.result, item.user

    # -- helpers -----------------------------------------------------------------
    def _require_graph(self) -> CompiledGraph:
        if self._graph is None:
            raise NCAPIError(
                f"{self.device_id}: no graph allocated")
        return self._graph

    def _check_open(self, require_boot: bool = True) -> None:
        if self.dead:
            raise self._dead_error()
        if self.closed:
            raise DeviceClosed(f"{self.device_id} is closed")
        if require_boot and not self.booted:
            raise NCAPIError(f"{self.device_id} is not booted")

    def _emit(self, action: str, **detail) -> None:
        if self.trace is not None:
            self.trace.emit(self.device_id, action, **detail)
