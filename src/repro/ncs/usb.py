"""USB 3.0 bus topology with shared-link contention.

The paper's testbed (Fig. 5) attaches 8 NCS devices: 2 directly to the
motherboard's USB 3.0 root ports, 6 through two external hubs.  A hub
multiplexes its downstream devices over one upstream link, so
concurrent transfers to devices on the same hub contend — this model
serialises them on the hub's upstream link resource, which is exactly
the "small penalty ... due to the data transfers" the paper observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

import numpy as np

from repro.errors import USBError
from repro.sim.core import Environment, Event
from repro.sim.resources import Resource
from repro.units import MB

#: Effective bulk-transfer bandwidth of a USB 3.0 SuperSpeed link.
#: Protocol overhead keeps sustained rates well under the 5 Gb/s line
#: rate; 400 MB/s matches measured xHCI bulk throughput.
USB3_BANDWIDTH_BYTES_S = 400 * MB
#: Per-transfer latency (submission, scheduling, completion IRQ).
USB3_LATENCY_S = 150e-6


#: A failed bulk transfer retries after this backoff (protocol
#: re-arm + host stack resubmission).
USB_RETRY_BACKOFF_S = 1e-3
#: Attempts before the host gives up on a transfer.
USB_MAX_ATTEMPTS = 4


@dataclass
class USBLink:
    """One physical link (root port or hub upstream).

    ``error_rate`` injects transfer failures (per attempt) from a
    deterministic per-link RNG — the failure-injection hook the
    robustness tests and the flaky-link ablation use.  Failed
    attempts are retried by :meth:`USBTopology.transfer` with a fixed
    backoff, like the xHCI stack resubmitting a babbled bulk URB.
    """

    name: str
    bandwidth: float = USB3_BANDWIDTH_BYTES_S
    latency: float = USB3_LATENCY_S
    error_rate: float = 0.0
    bytes_moved: int = 0
    errors_injected: int = 0
    _lock: Optional[Resource] = field(default=None, repr=False)
    _rng: Optional[np.random.Generator] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate < 1.0:
            raise USBError(
                f"error_rate must be in [0, 1), got {self.error_rate}")

    def bind(self, env: Environment) -> None:
        """Attach the link to a simulation environment."""
        self._lock = Resource(env, capacity=1)
        # Stable per-link seed (not Python's salted hash()) so failure
        # injection is reproducible run to run.
        import hashlib
        digest = hashlib.sha256(f"usb-link:{self.name}".encode()).digest()
        self._rng = np.random.default_rng(
            int.from_bytes(digest[:8], "little"))

    def attempt_fails(self) -> bool:
        """Draw one failure decision for a transfer attempt."""
        if self.error_rate <= 0.0 or self._rng is None:
            return False
        failed = bool(self._rng.random() < self.error_rate)
        if failed:
            self.errors_injected += 1
        return failed

    def transfer_seconds(self, nbytes: int) -> float:
        """Uncontended cost of moving *nbytes* over this link."""
        if nbytes < 0:
            raise USBError("negative transfer size")
        return self.latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class _Attachment:
    device_id: str
    links: tuple[str, ...]  #: path of link names from host to device


class USBTopology:
    """Host controller, root ports, hubs and attached devices."""

    def __init__(self, env: Environment, root_ports: int = 4) -> None:
        if root_ports < 1:
            raise USBError("need at least one root port")
        self.env = env
        self.links: dict[str, USBLink] = {}
        self._attachments: dict[str, _Attachment] = {}
        self._hub_ports: dict[str, int] = {}
        self._root_free = [f"root{i}" for i in range(root_ports)]
        for name in self._root_free:
            self._add_link(USBLink(name))

    # -- construction ---------------------------------------------------
    def _add_link(self, link: USBLink) -> None:
        if link.name in self.links:
            raise USBError(f"duplicate link {link.name!r}")
        link.bind(self.env)
        self.links[link.name] = link

    def add_hub(self, name: str, ports: int = 4,
                bandwidth: float = USB3_BANDWIDTH_BYTES_S) -> str:
        """Attach a hub to the next free root port; returns hub name."""
        if ports < 1:
            raise USBError("hub needs at least one port")
        if not self._root_free:
            raise USBError("no free root ports for hub")
        upstream = self._root_free.pop(0)
        hub_link = USBLink(f"{name}-up", bandwidth=bandwidth)
        self._add_link(hub_link)
        self._hub_ports[name] = ports
        # Record the chain for later attachment: hub upstream shares
        # the root port it occupies.
        self._hub_chains = getattr(self, "_hub_chains", {})
        self._hub_chains[name] = (upstream, hub_link.name)
        return name

    def attach_device(self, device_id: str,
                      hub: str | None = None) -> None:
        """Attach *device_id* to a root port or to *hub*."""
        if device_id in self._attachments:
            raise USBError(f"device {device_id!r} already attached")
        if hub is None:
            if not self._root_free:
                raise USBError("no free root ports")
            port = self._root_free.pop(0)
            self._attachments[device_id] = _Attachment(
                device_id, (port,))
            return
        if hub not in self._hub_ports:
            raise USBError(f"unknown hub {hub!r}")
        if self._hub_ports[hub] == 0:
            raise USBError(f"hub {hub!r} has no free ports")
        self._hub_ports[hub] -= 1
        chain = self._hub_chains[hub]
        self._attachments[device_id] = _Attachment(device_id, chain)

    def detach_device(self, device_id: str) -> None:
        """Hot-unplug *device_id*: drop its attachment.

        Subsequent transfers to the device raise :class:`USBError`
        (the xHCI stack's cable-pulled behaviour).  The port is not
        reclaimed — a yanked stick leaves its slot physically
        occupied for the rest of the run.
        """
        if device_id not in self._attachments:
            raise USBError(f"device {device_id!r} not attached")
        del self._attachments[device_id]

    @property
    def devices(self) -> list[str]:
        """Attached device ids, in attachment order."""
        return list(self._attachments)

    def path(self, device_id: str) -> tuple[str, ...]:
        """Link names from host to *device_id*."""
        try:
            return self._attachments[device_id].links
        except KeyError:
            raise USBError(f"device {device_id!r} not attached") from None

    # -- transfers ------------------------------------------------------------
    def transfer(self, device_id: str, nbytes: int) -> Event:
        """Move *nbytes* to/from a device as a DES process.

        The transfer holds every shared link on the device's path for
        its duration; devices on different root ports proceed in
        parallel, devices behind the same hub serialise.
        """
        path = self.path(device_id)
        return self.env.process(self._transfer(path, nbytes, device_id))

    def _transfer(self, path: tuple[str, ...], nbytes: int,
                  device_id: str = "") -> Generator[Event, None, float]:
        links = [self.links[name] for name in path]
        # The path's cost is bounded by its slowest link; latency adds
        # per hop.
        duration = (sum(l.latency for l in links)
                    + nbytes / min(l.bandwidth for l in links))
        started = self.env.now
        for attempt in range(1, USB_MAX_ATTEMPTS + 1):
            requests = []
            try:
                for link in links:
                    assert link._lock is not None
                    req = link._lock.request()
                    requests.append((link, req))
                    yield req
                # Link occupancy span covers exactly the locked window
                # (the deepest shared link on the path — the hub
                # upstream for hub devices — is where contention shows).
                obs = self.env.obs
                span = None
                if obs is not None:
                    span = obs.tracer.begin(
                        "usb_transfer", track=f"usb:{path[-1]}",
                        device=device_id, nbytes=nbytes,
                        attempt=attempt)
                yield self.env.timeout(duration)
                if obs is not None:
                    obs.tracer.end(span)
                failed = any(link.attempt_fails() for link in links)
                if not failed:
                    for link in links:
                        link.bytes_moved += nbytes
                    return self.env.now - started
            finally:
                for link, req in requests:
                    link._lock.release(req)
            if attempt == USB_MAX_ATTEMPTS:
                raise USBError(
                    f"transfer over {path} failed after "
                    f"{USB_MAX_ATTEMPTS} attempts")
            yield self.env.timeout(USB_RETRY_BACKOFF_S)
        raise AssertionError("unreachable")

    def transfer_seconds(self, device_id: str, nbytes: int) -> float:
        """Uncontended transfer cost along the device's path."""
        links = [self.links[name] for name in self.path(device_id)]
        return (sum(l.latency for l in links)
                + nbytes / min(l.bandwidth for l in links))


def paper_testbed_topology(env: Environment,
                           num_devices: int = 8) -> USBTopology:
    """The paper's Fig. 5 testbed: 2 root-port sticks + 6 over 2 hubs.

    For ``num_devices`` < 8 the root ports fill first, then hub A,
    then hub B, mirroring how the authors scaled 1-8 sticks.
    """
    if not 1 <= num_devices <= 8:
        raise USBError(
            f"the paper's testbed holds 1-8 devices, got {num_devices}")
    topo = USBTopology(env, root_ports=4)
    hubs: list[str] = []
    if num_devices > 2:
        hubs.append(topo.add_hub("hubA", ports=3))
    if num_devices > 5:
        hubs.append(topo.add_hub("hubB", ports=3))
    for i in range(num_devices):
        if i < 2:
            topo.attach_device(f"ncs{i}")
        elif i < 5:
            topo.attach_device(f"ncs{i}", hub="hubA")
        else:
            topo.attach_device(f"ncs{i}", hub="hubB")
    return topo
