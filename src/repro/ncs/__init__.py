"""Intel Neural Compute Stick (NCS) platform model.

The NCS packages a Myriad 2 (MA2450) behind a USB 3.0 interface with
two RISC management processors running an RTOS (paper §II-B, Fig. 2).
This package models:

* the USB bus topology — host controller, root ports and hubs with
  shared upstream bandwidth (the paper's testbed hangs 6 of its 8
  sticks off two hubs, Fig. 5) (:mod:`repro.ncs.usb`);
* the stick itself: firmware boot, graph allocation, the input/output
  inference FIFOs and the RISC runtime scheduler that feeds the SHAVE
  array (:mod:`repro.ncs.device`);
* the NCAPI: ``open_device`` / ``allocate_graph`` / ``load_tensor``
  (non-blocking) / ``get_result`` (blocking), mirroring the NCSDK v1
  semantics the paper's Listing 1 shows (:mod:`repro.ncs.ncapi`);
* device enumeration over the topology (:mod:`repro.ncs.enumeration`).
"""

from repro.ncs.usb import USBLink, USBTopology, paper_testbed_topology
from repro.ncs.firmware import FirmwareImage, DEFAULT_FIRMWARE
from repro.ncs.device import NCSDevice
from repro.ncs.ncapi import NCAPI, DeviceHandle, GraphHandle
from repro.ncs.enumeration import enumerate_devices, live_devices
from repro.ncs.health import HealthMonitor, HealthTransition
from repro.ncs.thermal import ThermalConfig, ThermalModel
from repro.ncs.session import SyncSession

__all__ = [
    "USBLink",
    "USBTopology",
    "paper_testbed_topology",
    "FirmwareImage",
    "DEFAULT_FIRMWARE",
    "NCSDevice",
    "NCAPI",
    "DeviceHandle",
    "GraphHandle",
    "enumerate_devices",
    "live_devices",
    "HealthMonitor",
    "HealthTransition",
    "ThermalConfig",
    "ThermalModel",
    "SyncSession",
]
