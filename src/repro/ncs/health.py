"""Per-device health tracking for fault-tolerant scheduling.

At fleet scale the paper's silent assumption — every stick stays
healthy for all 50 000 images — breaks down: sticks die, firmware
hangs, fanless enclosures cook.  The :class:`HealthMonitor` is the
host-side book-keeper of that reality: one status per device
(``healthy`` → ``suspect`` → ``dead``) with a timestamped transition
trail, driven by the fault-tolerant
:class:`~repro.ncsw.scheduler.MultiVPUScheduler` and consumed by the
degraded-mode accounting in run results and the utilisation report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NCAPIError
from repro.sim.core import Environment

#: Device states.  ``suspect`` marks a device whose call deadline
#: expired (hung firmware presumed) before it is written off.
HEALTHY = "healthy"
SUSPECT = "suspect"
DEAD = "dead"

_STATES = (HEALTHY, SUSPECT, DEAD)


@dataclass(frozen=True)
class HealthTransition:
    """One recorded status change of one device."""

    device: str
    status: str
    time: float
    reason: str = ""


class HealthMonitor:
    """Tracks the health status of a set of devices on the sim clock."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._status: dict[str, str] = {}
        self.transitions: list[HealthTransition] = []

    def register(self, device_id: str,
                 status: str = HEALTHY) -> None:
        """Start tracking *device_id* (idempotent)."""
        if status not in _STATES:
            raise NCAPIError(f"unknown health status {status!r}")
        if device_id not in self._status:
            self._status[device_id] = status

    def status(self, device_id: str) -> str:
        """Current status of a registered device."""
        try:
            return self._status[device_id]
        except KeyError:
            raise NCAPIError(
                f"device {device_id!r} is not registered") from None

    def mark(self, device_id: str, status: str,
             reason: str = "") -> None:
        """Transition *device_id* to *status*, recording it.

        Dead is terminal: a dead device never becomes healthy or
        suspect again.  Same-state marks are no-ops (no duplicate
        transitions in the trail).
        """
        if status not in _STATES:
            raise NCAPIError(f"unknown health status {status!r}")
        current = self.status(device_id)
        if current == status:
            return
        if current == DEAD:
            return
        self._status[device_id] = status
        self.transitions.append(HealthTransition(
            device=device_id, status=status, time=self.env.now,
            reason=reason))

    def mark_suspect(self, device_id: str, reason: str = "") -> None:
        """Flag a device whose call deadline expired."""
        self.mark(device_id, SUSPECT, reason)

    def mark_dead(self, device_id: str, reason: str = "") -> None:
        """Write a device off permanently."""
        self.mark(device_id, DEAD, reason)

    def is_alive(self, device_id: str) -> bool:
        """True while the device has not been written off."""
        return self.status(device_id) != DEAD

    def live(self) -> list[str]:
        """Devices not yet written off, in registration order."""
        return [d for d, s in self._status.items() if s != DEAD]

    def dead(self) -> list[str]:
        """Devices written off, in registration order."""
        return [d for d, s in self._status.items() if s == DEAD]

    def live_count(self) -> int:
        """Number of devices not yet written off.

        The cluster frontend's quorum check: re-sharding after a host
        death is only possible while this stays positive.
        """
        return sum(1 for s in self._status.values() if s != DEAD)

    def dead_count(self) -> int:
        """Number of devices written off."""
        return sum(1 for s in self._status.values() if s == DEAD)
