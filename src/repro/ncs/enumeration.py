"""Device enumeration over the USB topology.

``mvncGetDeviceName(index)`` in the NCSDK walks the USB bus; this is
its analogue: build the stick objects for every NCS attached to a
topology.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import DeviceNotFound
from repro.ncs.device import NCSDevice
from repro.ncs.firmware import DEFAULT_FIRMWARE, FirmwareImage
from repro.ncs.usb import USBTopology
from repro.sim.core import Environment
from repro.sim.monitor import TraceRecorder
from repro.vpu.myriad2 import Myriad2Config


def enumerate_devices(env: Environment, topology: USBTopology,
                      firmware: FirmwareImage = DEFAULT_FIRMWARE,
                      chip_config: Optional[Myriad2Config] = None,
                      functional: bool = True,
                      trace: Optional[TraceRecorder] = None
                      ) -> list[NCSDevice]:
    """Instantiate an :class:`NCSDevice` for every attached stick."""
    devices = [NCSDevice(env, device_id, topology, firmware=firmware,
                         chip_config=chip_config, functional=functional,
                         trace=trace)
               for device_id in topology.devices]
    if not devices:
        raise DeviceNotFound("no NCS devices attached to the topology")
    return devices


def live_devices(devices: Iterable[NCSDevice]) -> list[NCSDevice]:
    """Filter to sticks that are still alive.

    Re-enumeration after a mid-run failure: hot-unplugged, hung-and
    -killed, or thermally shut-down sticks drop out of the list, like
    ``mvncGetDeviceName`` no longer finding a yanked device.
    """
    return [d for d in devices if not d.dead]
