"""Synthetic ILSVRC 2012 Validation dataset.

Mirrors the structure the paper uses: a flat directory of numbered
validation images (``ILSVRC2012_val_00000001.JPEG`` ...), ground-truth
labels from the Validation Bounding Box Annotations, and the paper's
evaluation split into subsets of 10 000 images (Set-1 ... Set-5).

Images are generated lazily through :class:`~repro.data.generator.
ImageSynthesizer`, so a 50 000-image dataset costs no storage and no
up-front time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.data.generator import ImageSynthesizer, _rng_for
from repro.data.synsets import SynsetVocabulary
from repro.errors import DatasetError


@dataclass(frozen=True)
class ImageRecord:
    """One validation image (pixels produced lazily)."""

    image_id: int
    filename: str
    label: int
    wnid: str


@dataclass(frozen=True)
class ValidationAnnotation:
    """Bounding-box annotation record (label oracle, like the paper's).

    The bbox marks the region the template's grating dominates; the
    classification experiments only consume the label, as the paper
    does for its top-1 estimation.
    """

    image_id: int
    wnid: str
    xmin: int
    ymin: int
    xmax: int
    ymax: int

    def __post_init__(self) -> None:
        if not (0 <= self.xmin < self.xmax and 0 <= self.ymin < self.ymax):
            raise DatasetError(
                f"invalid bbox ({self.xmin},{self.ymin})-"
                f"({self.xmax},{self.ymax})")


class ILSVRCValidation:
    """The synthetic validation dataset.

    Parameters
    ----------
    vocabulary:
        Synset vocabulary defining the class set.
    synthesizer:
        Image source; must have ``num_classes == len(vocabulary)``.
    num_images:
        Total validation images (paper: 50 000).
    subset_size:
        Images per evaluation subset (paper: 10 000 -> 5 subsets).
    """

    def __init__(self, vocabulary: SynsetVocabulary,
                 synthesizer: ImageSynthesizer,
                 num_images: int = 50_000,
                 subset_size: int = 10_000,
                 seed: int = 2012) -> None:
        if synthesizer.num_classes != len(vocabulary):
            raise DatasetError(
                f"synthesizer has {synthesizer.num_classes} classes but "
                f"vocabulary has {len(vocabulary)}")
        if num_images < 1:
            raise DatasetError("num_images must be >= 1")
        if subset_size < 1 or num_images % subset_size != 0:
            raise DatasetError(
                f"subset_size {subset_size} must divide num_images "
                f"{num_images}")
        self.vocabulary = vocabulary
        self.synthesizer = synthesizer
        self.num_images = num_images
        self.subset_size = subset_size
        self.seed = seed
        # Deterministic label assignment, near-uniform across classes
        # (ILSVRC val has exactly 50 images per class; we shuffle a
        # balanced assignment for the same property).
        n_classes = len(vocabulary)
        reps = -(-num_images // n_classes)  # ceil division
        labels = np.tile(np.arange(n_classes), reps)[:num_images]
        _rng_for(seed, "labels").shuffle(labels)
        self._labels = labels

    # -- records ----------------------------------------------------------
    def __len__(self) -> int:
        return self.num_images

    def record(self, image_id: int) -> ImageRecord:
        """Record for 1-based *image_id* (matching ILSVRC numbering)."""
        if not 1 <= image_id <= self.num_images:
            raise DatasetError(
                f"image_id {image_id} out of range [1, {self.num_images}]")
        label = int(self._labels[image_id - 1])
        return ImageRecord(
            image_id=image_id,
            filename=f"ILSVRC2012_val_{image_id:08d}.JPEG",
            label=label,
            wnid=self.vocabulary[label].wnid,
        )

    def pixels(self, image_id: int) -> np.ndarray:
        """Lazily synthesize the uint8 HWC pixels of *image_id*."""
        rec = self.record(image_id)
        return self.synthesizer.sample(rec.label, rec.image_id)

    def annotation(self, image_id: int) -> ValidationAnnotation:
        """Bounding-box annotation for *image_id*."""
        rec = self.record(image_id)
        rng = _rng_for(self.seed, "bbox", image_id)
        size = self.synthesizer.size
        w = int(rng.integers(size // 4, size // 2 + 1))
        h = int(rng.integers(size // 4, size // 2 + 1))
        x = int(rng.integers(0, size - w))
        y = int(rng.integers(0, size - h))
        return ValidationAnnotation(
            image_id=image_id, wnid=rec.wnid,
            xmin=x, ymin=y, xmax=x + w, ymax=y + h)

    # -- subsets -------------------------------------------------------------
    @property
    def num_subsets(self) -> int:
        """Number of evaluation subsets (paper: 5)."""
        return self.num_images // self.subset_size

    def subset_ids(self, subset: int) -> range:
        """1-based image ids of evaluation subset *subset* (0-based)."""
        if not 0 <= subset < self.num_subsets:
            raise DatasetError(
                f"subset {subset} out of range [0, {self.num_subsets})")
        start = subset * self.subset_size + 1
        return range(start, start + self.subset_size)

    def iter_subset(self, subset: int,
                    limit: int | None = None) -> Iterator[ImageRecord]:
        """Iterate records of a subset, optionally truncated to *limit*.

        ``limit`` is the harness's scale knob: experiments at reduced
        scale evaluate the first *limit* images of each subset and
        record that in their output.
        """
        ids: Sequence[int] = self.subset_ids(subset)
        if limit is not None:
            ids = ids[:limit]
        for image_id in ids:
            yield self.record(image_id)

    def labels_for(self, records: Sequence[ImageRecord]) -> np.ndarray:
        """Ground-truth label vector for a list of records."""
        return np.array([r.label for r in records], dtype=np.int64)

    # -- on-disk materialisation ---------------------------------------------
    def export_to_dir(self, directory, subset: int,
                      limit: int | None = None) -> int:
        """Write a subset to disk as PPM files + a ground-truth list.

        Produces ``ILSVRC2012_val_XXXXXXXX.ppm`` files and a
        ``val_ground_truth.txt`` (``image_id label wnid`` per line) —
        the on-disk layout the paper's OpenCV-based harness walks.
        Returns the number of images written.
        """
        from pathlib import Path

        from repro.data.ppm import write_ppm

        out = Path(directory)
        out.mkdir(parents=True, exist_ok=True)
        lines = []
        count = 0
        for rec in self.iter_subset(subset, limit=limit):
            stem = rec.filename.rsplit(".", 1)[0]
            write_ppm(out / f"{stem}.ppm", self.pixels(rec.image_id))
            lines.append(f"{rec.image_id} {rec.label} {rec.wnid}")
            count += 1
        (out / "val_ground_truth.txt").write_text(
            "\n".join(lines) + "\n")
        return count
