"""Caffe-style test-time oversampling (10-crop).

Caffe's reference ``classify.py`` — the harness behind every
GoogLeNet-era accuracy number, including the BVLC model the paper
deploys — averages predictions over ten crops: the four corners and
the centre of the image, each plus its horizontal mirror.  This module
implements that oversampling on uint8 HWC images, so the accuracy
experiments can quantify what single-crop evaluation (all the NCS
pipeline can afford at 100 ms/inference) gives up against the
published protocol.

Substitution caveat (documented in EXPERIMENTS.md): on the synthetic
substrate the classifier is calibrated on whole resized images, and
the random-feature backbone is not translation invariant, so crops are
*off-distribution* and oversampling degrades accuracy here — unlike a
trained GoogLeNet, whose features tolerate crops.  The implementation
is exercised mechanically either way; the accuracy claim belongs to
the trained-weights regime.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError


def ten_crop(image: np.ndarray, crop_size: int) -> np.ndarray:
    """The 10 Caffe oversampling crops of an HWC image.

    Returns an array of shape ``(10, crop, crop, C)``: four corners +
    centre, then the horizontal mirrors of the same five, in Caffe's
    order.
    """
    if image.ndim != 3:
        raise DatasetError(f"expected HWC image, got ndim={image.ndim}")
    h, w, _ = image.shape
    if crop_size > min(h, w):
        raise DatasetError(
            f"crop {crop_size} exceeds image {h}x{w}")
    cy, cx = (h - crop_size) // 2, (w - crop_size) // 2
    anchors = [(0, 0), (0, w - crop_size), (h - crop_size, 0),
               (h - crop_size, w - crop_size), (cy, cx)]
    crops = [image[y:y + crop_size, x:x + crop_size]
             for y, x in anchors]
    mirrored = [c[:, ::-1] for c in crops]
    return np.stack(crops + mirrored)


def oversampled_predict(net, preprocessor, image: np.ndarray,
                        policy=None) -> tuple[int, float]:
    """Classify one uint8 HWC image by averaging over the 10 crops.

    The crop size is the preprocessor's input geometry; crops skip the
    resize (they are already at network size), matching Caffe's
    oversample path.  Returns ``(label, averaged confidence)``.
    """
    crop = preprocessor.input_size
    if min(image.shape[:2]) <= crop:
        raise DatasetError(
            f"image {image.shape[:2]} too small to crop at {crop} "
            f"(oversampling needs head-room)")
    crops = ten_crop(image, crop)
    batch = np.stack([preprocessor(c) for c in crops])
    probs = net.forward(batch, policy).reshape(10, -1)
    mean = probs.mean(axis=0)
    label = int(mean.argmax())
    return label, float(mean[label])
