"""Synthetic ImageNet ILSVRC 2012 substrate.

The paper evaluates on the ILSVRC 2012 Validation dataset (50 000
images, 1000 synsets) with labels from the Validation Bounding Box
Annotations.  We cannot ship ImageNet, so this package generates a
statistically calibrated stand-in (DESIGN.md §2):

* a 1000-entry WordNet-like synset vocabulary (:mod:`synsets`);
* deterministic class-conditional image synthesis — every class has a
  canonical template, samples are templates plus calibrated noise
  (:mod:`generator`);
* a validation dataset with annotations and the paper's 5 x 10 000
  subset split (:mod:`ilsvrc`);
* a simulated JPEG decode stage and the Caffe-style preprocessing
  pipeline (resize, mean subtraction, FP16 conversion)
  (:mod:`decode`, :mod:`preprocess`);
* noise calibration targeting a chosen top-1 error (:mod:`calibrate`).
"""

from repro.data.synsets import Synset, SynsetVocabulary
from repro.data.generator import ImageSynthesizer
from repro.data.ilsvrc import (
    ILSVRCValidation,
    ImageRecord,
    ValidationAnnotation,
)
from repro.data.decode import JPEGDecoder
from repro.data.preprocess import Preprocessor
from repro.data.calibrate import calibrate_noise

__all__ = [
    "Synset",
    "SynsetVocabulary",
    "ImageSynthesizer",
    "ILSVRCValidation",
    "ImageRecord",
    "ValidationAnnotation",
    "JPEGDecoder",
    "Preprocessor",
    "calibrate_noise",
]
