"""Noise calibration: hit a target top-1 error rate.

The paper measures ~32 % top-1 error for GoogLeNet on ILSVRC 2012.
Because our dataset is synthetic, the error rate is a *construction
parameter*: top-1 error is monotonically increasing in the generator's
``noise_sigma``, so a bisection on sigma lands the FP32 error at the
paper's value.  The FP16-vs-FP32 *difference* — the quantity the
paper's §IV-B actually studies — is then genuinely measured, not
constructed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.generator import ImageSynthesizer
from repro.nn.graph import Network
from repro.numerics.quant import PrecisionPolicy


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a noise calibration run."""

    noise_sigma: float
    achieved_error: float
    target_error: float
    iterations: int
    samples: int


def _top1_error(net: Network, synth: ImageSynthesizer,
                preprocess, n_samples: int, seed: int,
                batch: int = 32) -> float:
    """Top-1 error of *net* on freshly synthesized samples."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, synth.num_classes, size=n_samples)
    errors = 0
    for start in range(0, n_samples, batch):
        chunk = labels[start:start + batch]
        imgs = [preprocess(synth.sample(int(c), 10_000_000 + start + i))
                for i, c in enumerate(chunk)]
        x = np.stack(imgs)
        pred, _ = net.predict(x, PrecisionPolicy.fp32())
        errors += int(np.sum(pred != chunk))
    return errors / n_samples


def calibrate_noise(net: Network, synthesizer: ImageSynthesizer,
                    preprocess, target_error: float = 0.32,
                    n_samples: int = 256, tolerance: float = 0.02,
                    max_iterations: int = 12,
                    seed: int = 99) -> CalibrationResult:
    """Bisect ``noise_sigma`` so FP32 top-1 error lands near *target*.

    Parameters
    ----------
    net:
        Pre-trained network (weights must already be installed).
    synthesizer:
        Base synthesizer; the returned sigma should be applied with
        :meth:`ImageSynthesizer.with_noise`.
    preprocess:
        Callable uint8 HWC -> float32 CHW (a
        :class:`~repro.data.preprocess.Preprocessor`).
    target_error:
        Desired top-1 error (paper: 0.32).
    n_samples:
        Images evaluated per bisection step.
    tolerance:
        Stop once the achieved error is within this distance of target.
    """
    if not 0.0 < target_error < 1.0:
        raise ValueError(f"target_error must be in (0,1), got "
                         f"{target_error}")
    lo, hi = 0.0, 40.0
    # Grow the bracket until error(hi) exceeds the target (error is
    # monotone in sigma; at huge sigma images are pure noise and the
    # error approaches 1 - 1/num_classes).
    iterations = 0
    while iterations < max_iterations:
        iterations += 1
        err_hi = _top1_error(net, synthesizer.with_noise(hi), preprocess,
                             n_samples, seed)
        if err_hi >= target_error:
            break
        hi *= 2.0
        if hi > 4096:
            # Even saturating noise can't reach the target (tiny class
            # count) — return the extreme.
            return CalibrationResult(hi, err_hi, target_error,
                                     iterations, n_samples)

    sigma = hi
    err = err_hi
    while iterations < max_iterations:
        iterations += 1
        mid = 0.5 * (lo + hi)
        err = _top1_error(net, synthesizer.with_noise(mid), preprocess,
                          n_samples, seed)
        sigma = mid
        if abs(err - target_error) <= tolerance:
            break
        if err < target_error:
            lo = mid
        else:
            hi = mid

    return CalibrationResult(sigma, err, target_error, iterations,
                             n_samples)
