"""Simulated JPEG decode stage.

The paper's harness decodes validation JPEGs with OpenCV but *excludes
decode time from the reported results* (§IV: "we omit from our results
the decoding time per image, but account for the data transferring
time").  The decoder here does the same: it produces the pixels (by
invoking the deterministic synthesizer — our "storage format") and
tracks the simulated decode cost separately so the harness can report
it excluded, exactly like the paper.

The cost model is a fixed per-image overhead plus a per-pixel term,
calibrated to libjpeg-turbo-era throughput (~100 MP/s single thread).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.generator import ImageSynthesizer


@dataclass(frozen=True)
class DecodeStats:
    """Accumulated simulated decode cost."""

    images: int
    seconds: float

    @property
    def ms_per_image(self) -> float:
        """Mean simulated decode cost per image, in milliseconds."""
        return 1000.0 * self.seconds / self.images if self.images else 0.0


class JPEGDecoder:
    """Produces pixels for an image record and accounts decode time.

    Parameters
    ----------
    synthesizer:
        The deterministic image source standing in for the JPEG files.
    per_image_overhead_s:
        Fixed header/huffman setup cost per image.
    pixels_per_second:
        Sustained decode throughput (pixels / s).
    """

    def __init__(self, synthesizer: ImageSynthesizer,
                 per_image_overhead_s: float = 0.5e-3,
                 pixels_per_second: float = 100e6) -> None:
        self.synthesizer = synthesizer
        self.per_image_overhead_s = float(per_image_overhead_s)
        self.pixels_per_second = float(pixels_per_second)
        self._images = 0
        self._seconds = 0.0

    def decode(self, class_index: int, image_id: int) -> np.ndarray:
        """Return uint8 HWC pixels and accrue simulated decode time."""
        img = self.synthesizer.sample(class_index, image_id)
        self._images += 1
        self._seconds += (self.per_image_overhead_s
                          + img.shape[0] * img.shape[1]
                          / self.pixels_per_second)
        return img

    @property
    def stats(self) -> DecodeStats:
        """Decode cost accrued so far (excluded from reported timings)."""
        return DecodeStats(self._images, self._seconds)

    def reset_stats(self) -> None:
        """Zero the accumulated decode-cost counters."""
        self._images = 0
        self._seconds = 0.0
