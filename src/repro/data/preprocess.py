"""Caffe-style image preprocessing.

The paper's NCSw framework decodes images with OpenCV, resizes them to
the network's input geometry (224 x 224 for GoogLeNet), subtracts the
ILSVRC 2012 training-set channel means, and — for the VPU path —
converts the pixels to FP16 with OpenEXR's ``half`` (paper §III).
:class:`Preprocessor` reproduces that pipeline on uint8 HWC inputs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.numerics.half import to_half

#: BGR channel means of the ILSVRC 2012 training set, as shipped with
#: Caffe's GoogLeNet (values in 8-bit counts). The synthetic dataset is
#: constructed with matching first moments, so the same constants apply.
ILSVRC2012_MEAN_BGR = (104.0, 117.0, 123.0)


def resize_bilinear(img: np.ndarray, out_size: int) -> np.ndarray:
    """Bilinear resize of an HWC uint8/float image to a square size."""
    if img.ndim != 3:
        raise DatasetError(f"expected HWC image, got ndim={img.ndim}")
    h, w, _ = img.shape
    if h == out_size and w == out_size:
        return img.copy()
    src = img.astype(np.float32)
    ys = np.linspace(0, h - 1, out_size)
    xs = np.linspace(0, w - 1, out_size)
    y0 = np.clip(np.floor(ys).astype(int), 0, max(h - 2, 0))
    x0 = np.clip(np.floor(xs).astype(int), 0, max(w - 2, 0))
    wy = (ys - y0).reshape(-1, 1, 1)
    wx = (xs - x0).reshape(1, -1, 1)
    y1 = np.minimum(y0 + 1, h - 1)
    x1 = np.minimum(x0 + 1, w - 1)
    top = src[y0][:, x0] * (1 - wx) + src[y0][:, x1] * wx
    bot = src[y1][:, x0] * (1 - wx) + src[y1][:, x1] * wx
    out = top * (1 - wy) + bot * wy
    if img.dtype == np.uint8:
        return np.clip(out, 0, 255).astype(np.uint8)
    return out.astype(img.dtype)


class Preprocessor:
    """Decode-side preprocessing: resize, BGR mean-subtract, scale.

    Parameters
    ----------
    input_size:
        Network input geometry (paper: 224).
    mean_bgr:
        Per-channel means to subtract (Caffe operates in BGR order).
    scale:
        Multiplier applied after mean subtraction.  1/128 keeps the
        tensor roughly in [-1, 1], comfortably inside FP16 range.
    """

    def __init__(self, input_size: int,
                 mean_bgr: tuple[float, float, float] = ILSVRC2012_MEAN_BGR,
                 scale: float = 1.0 / 128.0) -> None:
        if input_size < 1:
            raise DatasetError("input_size must be >= 1")
        self.input_size = input_size
        self.mean_bgr = tuple(float(m) for m in mean_bgr)
        self.scale = float(scale)

    def __call__(self, img_u8: np.ndarray) -> np.ndarray:
        """uint8 HWC RGB -> float32 CHW, mean-subtracted and scaled."""
        if img_u8.ndim != 3 or img_u8.shape[2] != 3:
            raise DatasetError(
                f"expected HxWx3 image, got shape {img_u8.shape}")
        img = resize_bilinear(img_u8, self.input_size).astype(np.float32)
        # OpenCV decodes to BGR; emulate by flipping RGB -> BGR before
        # subtracting the BGR means, exactly as Caffe transformers do.
        bgr = img[:, :, ::-1]
        bgr = bgr - np.asarray(self.mean_bgr, dtype=np.float32)
        chw = np.ascontiguousarray(bgr.transpose(2, 0, 1)) * self.scale
        return chw.astype(np.float32)

    def batch(self, imgs: list[np.ndarray]) -> np.ndarray:
        """Preprocess a list of images into one NCHW batch."""
        if not imgs:
            raise DatasetError("empty batch")
        return np.stack([self(im) for im in imgs])

    def to_fp16_payload(self, chw: np.ndarray) -> np.ndarray:
        """FP32 -> FP16 conversion for the VPU path (OpenEXR analogue).

        This is the actual tensor sent over USB to the NCS: half the
        bytes of the FP32 blob, which the USB transfer model accounts
        for.
        """
        return to_half(chw)
