"""WordNet-like synset vocabulary.

ImageNet organises its classes as WordNet noun synsets ("n02084071 —
dog, domestic dog, canis familiaris").  The synthetic vocabulary keeps
that structure: stable IDs in WordNet's ``nXXXXXXXX`` format, a gloss,
and one or more lemma phrases, generated deterministically from small
word inventories so the full 1000-class vocabulary costs nothing to
build and never changes across runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError

_ADJECTIVES = [
    "crested", "spotted", "striped", "dwarf", "giant", "lesser",
    "greater", "common", "northern", "southern", "eastern", "western",
    "golden", "silver", "red", "blue", "green", "black", "white",
    "mottled", "banded", "horned", "long-tailed", "short-eared",
    "ring-necked",
]

_NOUNS = [
    "terrier", "retriever", "falcon", "heron", "salamander", "beetle",
    "orchid", "maple", "locomotive", "schooner", "harpsichord",
    "abacus", "bridge", "lighthouse", "teapot", "loom", "compass",
    "turbine", "pagoda", "viaduct", "chalice", "quill", "sundial",
    "astrolabe", "zeppelin", "barometer", "kiln", "anvil", "plough",
    "spindle", "lantern", "gondola", "obelisk", "trellis", "bellows",
    "mortar", "sextant", "crucible", "windlass", "davit",
]

_CATEGORIES = ["animal", "plant", "artifact", "instrument", "structure"]


@dataclass(frozen=True)
class Synset:
    """One synthetic WordNet synset."""

    wnid: str
    index: int
    lemmas: tuple[str, ...]
    gloss: str
    category: str

    @property
    def name(self) -> str:
        """Primary lemma."""
        return self.lemmas[0]


class SynsetVocabulary:
    """Deterministic vocabulary of *num_classes* synsets.

    The mapping index <-> wnid is stable for a given ``num_classes``
    and seed, mirroring how ILSVRC fixes its 1000-synset list.
    """

    def __init__(self, num_classes: int = 1000, seed: int = 2012) -> None:
        if num_classes < 1:
            raise DatasetError(
                f"num_classes must be >= 1, got {num_classes}")
        self.num_classes = num_classes
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._synsets: list[Synset] = []
        used: set[str] = set()
        for idx in range(num_classes):
            # WordNet noun offsets start at n00000001; keep them unique
            # and ordered.
            wnid = f"n{(idx + 1) * 7 + 1000000:08d}"
            adj = _ADJECTIVES[int(rng.integers(len(_ADJECTIVES)))]
            noun = _NOUNS[int(rng.integers(len(_NOUNS)))]
            base = f"{adj} {noun}"
            # Disambiguate lemma collisions with a roman-ish suffix.
            lemma = base
            n = 2
            while lemma in used:
                lemma = f"{base} ({n})"
                n += 1
            used.add(lemma)
            category = _CATEGORIES[int(rng.integers(len(_CATEGORIES)))]
            synset = Synset(
                wnid=wnid,
                index=idx,
                lemmas=(lemma, f"{noun}"),
                gloss=f"a {category} of the {adj} {noun} kind",
                category=category,
            )
            self._synsets.append(synset)
        self._by_wnid = {s.wnid: s for s in self._synsets}

    def __len__(self) -> int:
        return self.num_classes

    def __getitem__(self, index: int) -> Synset:
        if not 0 <= index < self.num_classes:
            raise DatasetError(
                f"class index {index} out of range "
                f"[0, {self.num_classes})")
        return self._synsets[index]

    def by_wnid(self, wnid: str) -> Synset:
        """Look up a synset by its WordNet ID."""
        try:
            return self._by_wnid[wnid]
        except KeyError:
            raise DatasetError(f"unknown wnid {wnid!r}") from None

    def __iter__(self):
        return iter(self._synsets)
