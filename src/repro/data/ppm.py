"""PPM (portable pixmap) image file I/O.

A from-scratch binary P6 codec so the synthetic validation set can be
materialised as *actual image files on disk* and read back — giving
the NCSw ``ImageFolder`` source a genuine folder of images to walk,
like the 50 000 JPEGs the paper's harness reads.  P6 is chosen because
it is a real, widely-supported format expressible without compression
dependencies.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import DatasetError

_MAGIC = b"P6"


def write_ppm(path: str | Path, image: np.ndarray) -> None:
    """Write an HxWx3 uint8 RGB array as a binary P6 file."""
    img = np.asarray(image)
    if img.ndim != 3 or img.shape[2] != 3:
        raise DatasetError(
            f"PPM needs an HxWx3 image, got shape {img.shape}")
    if img.dtype != np.uint8:
        raise DatasetError(f"PPM needs uint8 pixels, got {img.dtype}")
    h, w, _ = img.shape
    header = f"P6\n{w} {h}\n255\n".encode("ascii")
    Path(path).write_bytes(header + img.tobytes())


def read_ppm(path: str | Path) -> np.ndarray:
    """Read a binary P6 file into an HxWx3 uint8 RGB array."""
    data = Path(path).read_bytes()
    if not data.startswith(_MAGIC):
        raise DatasetError(f"{path}: not a P6 PPM file")
    # Header: magic, width, height, maxval — whitespace/comment
    # separated, then a single whitespace byte before pixel data.
    pos = 2
    fields: list[int] = []
    while len(fields) < 3:
        # Skip whitespace and comments.
        while pos < len(data) and data[pos:pos + 1].isspace():
            pos += 1
        if pos < len(data) and data[pos:pos + 1] == b"#":
            while pos < len(data) and data[pos] != 0x0A:
                pos += 1
            continue
        start = pos
        while pos < len(data) and not data[pos:pos + 1].isspace():
            pos += 1
        token = data[start:pos]
        if not token.isdigit():
            raise DatasetError(
                f"{path}: malformed PPM header near byte {start}")
        fields.append(int(token))
    pos += 1  # single whitespace after maxval
    w, h, maxval = fields
    if maxval != 255:
        raise DatasetError(
            f"{path}: only 8-bit PPM supported, maxval={maxval}")
    expected = w * h * 3
    pixels = data[pos:pos + expected]
    if len(pixels) != expected:
        raise DatasetError(
            f"{path}: truncated pixel data ({len(pixels)} of "
            f"{expected} bytes)")
    return np.frombuffer(pixels, dtype=np.uint8).reshape(h, w, 3).copy()
