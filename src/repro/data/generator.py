"""Class-conditional synthetic image synthesis.

Every class has a deterministic canonical *template*: a smooth RGB
pattern built from a low-resolution random field (upsampled, so it has
spatial structure like a photograph rather than white noise) plus a
class-specific sinusoidal grating.  A validation image is its class
template perturbed by pixel noise, brightness jitter and a small
translation — the knobs that make top-1 accuracy a smooth function of
``noise_sigma`` (calibrated in :mod:`repro.data.calibrate`).

All images are uint8 HWC RGB, like decoded JPEGs, so the preprocessing
pipeline (resize, mean-subtract, FP16-convert) is exercised exactly as
the paper's NCSw framework exercises OpenCV + OpenEXR.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import DatasetError


def _rng_for(seed: int, *parts: object) -> np.random.Generator:
    digest = hashlib.sha256(
        ":".join(str(p) for p in (seed,) + parts).encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


class ImageSynthesizer:
    """Deterministic generator of class templates and noisy samples.

    Parameters
    ----------
    num_classes:
        Number of classes in the vocabulary.
    size:
        Square image side in pixels (e.g. 224 for paper scale).
    noise_sigma:
        Standard deviation of the additive pixel noise, in 8-bit counts.
        This is the knob :func:`repro.data.calibrate.calibrate_noise`
        tunes to land the top-1 error at the paper's ~32 %.
    seed:
        Master seed; class templates depend only on (seed, class).
    jitter_shift:
        Maximum cyclic translation in pixels (0 disables). Random
        feature maps are not shift invariant, so this stays small.
    jitter_gain / jitter_offset:
        Std-dev of the multiplicative / additive brightness jitter.
    """

    GRID = 8  #: low-res field resolution the templates are built from

    def __init__(self, num_classes: int, size: int,
                 noise_sigma: float = 60.0, seed: int = 2012,
                 jitter_shift: int = 1, jitter_gain: float = 0.02,
                 jitter_offset: float = 3.0) -> None:
        if num_classes < 1:
            raise DatasetError("num_classes must be >= 1")
        if size < self.GRID:
            raise DatasetError(f"size must be >= {self.GRID}, got {size}")
        if noise_sigma < 0:
            raise DatasetError("noise_sigma must be >= 0")
        if jitter_shift < 0:
            raise DatasetError("jitter_shift must be >= 0")
        self.num_classes = num_classes
        self.size = size
        self.noise_sigma = float(noise_sigma)
        self.seed = seed
        self.jitter_shift = int(jitter_shift)
        self.jitter_gain = float(jitter_gain)
        self.jitter_offset = float(jitter_offset)
        self._template_cache: dict[int, np.ndarray] = {}

    # -- templates ------------------------------------------------------
    def template(self, class_index: int) -> np.ndarray:
        """Canonical uint8 HWC image for *class_index* (cached)."""
        if not 0 <= class_index < self.num_classes:
            raise DatasetError(
                f"class index {class_index} out of range")
        cached = self._template_cache.get(class_index)
        if cached is not None:
            return cached
        rng = _rng_for(self.seed, "template", class_index)
        size = self.size

        # Smooth random field: GRID x GRID per channel, bilinearly
        # upsampled. Gives photograph-like low-frequency structure.
        field = rng.uniform(0, 255, size=(self.GRID, self.GRID, 3))
        coords = np.linspace(0, self.GRID - 1, size)
        i0 = np.clip(np.floor(coords).astype(int), 0, self.GRID - 2)
        frac = (coords - i0).reshape(-1, 1)
        rows = (field[i0] * (1 - frac[:, :, None])
                + field[i0 + 1] * frac[:, :, None])
        fracc = (coords - i0).reshape(1, -1, 1)
        img = (rows[:, i0] * (1 - fracc) + rows[:, i0 + 1] * fracc)

        # Class-specific grating adds mid-frequency discriminative
        # detail that survives downscaling.
        fx, fy = rng.uniform(1.0, 4.0, size=2)
        phase = rng.uniform(0, 2 * np.pi)
        amp = rng.uniform(20, 45)
        yy, xx = np.meshgrid(np.linspace(0, 2 * np.pi, size),
                             np.linspace(0, 2 * np.pi, size),
                             indexing="ij")
        grating = amp * np.sin(fx * xx + fy * yy + phase)
        img = img + grating[:, :, None]

        out = np.clip(img, 0, 255).astype(np.uint8)
        self._template_cache[class_index] = out
        return out

    # -- samples -----------------------------------------------------------
    def sample(self, class_index: int, image_id: int) -> np.ndarray:
        """Noisy uint8 HWC sample of *class_index*, keyed by *image_id*.

        The same ``(seed, class, image_id, noise_sigma)`` always yields
        the same pixels, so datasets are reproducible without storage.
        """
        rng = _rng_for(self.seed, "sample", class_index, image_id,
                       round(self.noise_sigma, 6))
        img = self.template(class_index).astype(np.float32)

        # Mild cyclic translation; kept small enough that noise_sigma
        # remains the dominant difficulty knob.
        if self.jitter_shift > 0:
            shift = int(rng.integers(-self.jitter_shift,
                                     self.jitter_shift + 1))
            if shift:
                img = np.roll(img, shift, axis=(0, 1))

        # Mild brightness / contrast jitter.
        gain = 1.0 + rng.normal(0, self.jitter_gain)
        offset = rng.normal(0, self.jitter_offset)
        img = img * gain + offset

        # Calibrated pixel noise — the main difficulty knob.
        if self.noise_sigma > 0:
            img = img + rng.normal(0, self.noise_sigma, size=img.shape)

        return np.clip(img, 0, 255).astype(np.uint8)

    def with_noise(self, noise_sigma: float) -> "ImageSynthesizer":
        """Copy of this synthesizer at a different noise level.

        Shares the template cache (templates don't depend on noise).
        """
        clone = ImageSynthesizer(
            self.num_classes, self.size, noise_sigma, self.seed,
            jitter_shift=self.jitter_shift, jitter_gain=self.jitter_gain,
            jitter_offset=self.jitter_offset)
        clone._template_cache = self._template_cache
        return clone
