"""Layer-boundary partitioning of a network across device tiers.

A *cut point* splits the ordered layer list after index ``k`` into a
front half and a back half that execute on different devices, with the
single crossing activation blob shipped over the connecting channel
(USB for a VPU endpoint).  Only boundaries where exactly one blob
crosses are valid: a multi-blob frontier (the interior of a GoogLeNet
inception module, say) would need a multi-tensor wire protocol the NCS
stack does not have, and the paper's pipeline model assumes one blob
per hop.

:func:`split_network` materialises the halves as two ordinary
:class:`~repro.nn.graph.Network` objects sharing the original layer
instances (and therefore weights), so the whole capture / fusion /
precision machinery applies unchanged to each half.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import GraphError
from repro.nn.graph import Network
from repro.numerics.quant import PrecisionPolicy


@dataclass(frozen=True)
class CutPoint:
    """A valid split boundary: after layer ``index``, blob ``blob``."""

    #: Index of the last front-half layer in ``network.layers``.
    index: int
    #: The single activation blob crossing the boundary.
    blob: str
    #: Names of the front-half layers, in execution order.
    front_names: tuple[str, ...]
    #: Names of the back-half layers, in execution order.
    back_names: tuple[str, ...]

    def __str__(self) -> str:
        return f"after {self.front_names[-1]} ({self.blob})"


def _crossing_blobs(network: Network, index: int,
                    produced_front: set[str]) -> set[str]:
    """Blobs the back half reads from the front half for a cut at
    *index*.

    The subtlety is in-place layers: an in-place ReLU in the back half
    *re-produces* a blob name the front half also produced, so later
    back-half consumers of that name read the local (back-half) value,
    not a crossing one.  Walking the back half in execution order with
    a ``local`` produced-set handles this exactly.
    """
    crossing: set[str] = set()
    local: set[str] = set()
    for layer in network.layers[index + 1:]:
        for bottom in layer.bottoms:
            if bottom in local:
                continue
            if bottom in produced_front or bottom == network.input_blob:
                crossing.add(bottom)
        local.update(layer.tops)
    return crossing


def enumerate_cuts(network: Network) -> list[CutPoint]:
    """All valid cut points of *network*, in layer order.

    A boundary after layer ``k`` is valid iff exactly one blob crosses
    it and that blob is not the network input (a back half that reads
    the raw input would bypass the front entirely).
    """
    layers = network.layers
    cuts: list[CutPoint] = []
    produced: set[str] = set()
    for k in range(len(layers) - 1):
        produced.update(layers[k].tops)
        crossing = _crossing_blobs(network, k, produced)
        if len(crossing) != 1:
            continue
        blob = next(iter(crossing))
        if blob == network.input_blob:
            continue
        cuts.append(CutPoint(
            index=k,
            blob=blob,
            front_names=tuple(l.name for l in layers[:k + 1]),
            back_names=tuple(l.name for l in layers[k + 1:])))
    return cuts


def split_network(network: Network,
                  cut: CutPoint) -> tuple[Network, Network]:
    """Materialise the two halves of *network* at *cut*.

    The halves share the original :class:`~repro.nn.layer.Layer`
    instances, so weight initialisation or mutation on one network is
    visible in the other — exactly what split execution wants.
    """
    layers = network.layers
    if not 0 <= cut.index < len(layers) - 1:
        raise GraphError(
            f"cut index {cut.index} out of range for "
            f"{len(layers)}-layer network {network.name!r}")
    if tuple(l.name for l in layers[:cut.index + 1]) != cut.front_names:
        raise GraphError(
            f"cut {cut} does not match network {network.name!r}")
    shapes = network.infer_shapes()
    front = Network(f"{network.name}.front", network.input_blob,
                    network.input_shape)
    for layer in layers[:cut.index + 1]:
        front.add(layer)
    if cut.blob not in {top for l in front.layers for top in l.tops}:
        raise GraphError(
            f"cut blob {cut.blob!r} is not produced by the front half")
    back = Network(f"{network.name}.back", cut.blob, shapes[cut.blob])
    for layer in layers[cut.index + 1:]:
        back.add(layer)
    return front, back


def half_policies(
        policy: PrecisionPolicy
) -> tuple[PrecisionPolicy, PrecisionPolicy]:
    """Front/back precision policies matching monolithic *policy*.

    The front half runs *policy* unchanged.  The back half runs
    *policy* with input quantisation forced off: its input is the cut
    blob, which the front half already rounded (or deliberately did
    not), and rounding it again at entry would diverge from the
    monolithic run whenever the producing layer sits outside the
    policy's ``layer_filter``.  With this pairing, split execution is
    bit-identical to ``network.forward(x, policy)`` for every valid
    cut — the property the split test suite pins down.
    """
    return policy, dataclasses.replace(policy, quantize_input=False)
