"""Cost-based placement planning for split inference.

The planner prices every valid cut of a network against the calibrated
device timing models:

* **VPU half** — per-layer cycle counts from the real compiler
  schedule (:func:`repro.vpu.compiler.compile.compile_graph`) at the
  stick's 600 MHz SHAVE clock, plus the USB transfer of whichever
  tensor enters or leaves the stick.  A ReLU fused into its producing
  convolution carries zero cycles of its own — the compiler attributes
  the fused cycles to the convolution — so a cut that separates a
  fused pair mis-attributes only the (tiny) rectification time, never
  the convolution itself.
* **Host half** — the Amdahl-style :class:`BatchLatencyModel` anchored
  on the paper's CPU/GPU measurements, scaled by the half's MAC
  fraction of paper GoogLeNet (:func:`repro.baselines.calibration.mac_scale`).
* **Link** — the cut blob at FP16 wire precision over one USB 3.0
  bulk channel (latency + bytes / bandwidth).

Latency is the serial sum of the three stages; pipelined throughput is
the reciprocal of the slowest stage (front half of request ``k+1``
overlaps the back half of request ``k``), with the VPU stage divided
by the stick count — the multi-stick scheduler deals consecutive
requests to idle sticks.  Energy efficiency divides throughput by the
summed TDP of both tiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baselines.calibration import (
    CPU_LATENCY,
    GPU_LATENCY,
    BatchLatencyModel,
    mac_scale,
)
from repro.errors import SimulationError
from repro.ncs.usb import USB3_BANDWIDTH_BYTES_S, USB3_LATENCY_S
from repro.nn.graph import Network
from repro.power.tdp import DEFAULT_TDP
from repro.split.partition import CutPoint, enumerate_cuts
from repro.vpu.compiler.compile import CompiledGraph, compile_graph

#: Wire precision of tensors crossing a VPU endpoint (the NCS protocol
#: moves FP16).
WIRE_BYTES_PER_ELEMENT = 2

#: Host latency models and TDP sources by tier name.
HOST_TIERS: dict[str, BatchLatencyModel] = {
    "cpu": CPU_LATENCY,
    "gpu": GPU_LATENCY,
}


def usb_seconds(nbytes: int) -> float:
    """One bulk transfer over an uncontended USB 3.0 link."""
    return USB3_LATENCY_S + nbytes / USB3_BANDWIDTH_BYTES_S


def vpu_layer_seconds(graph: CompiledGraph) -> dict[str, float]:
    """Per-layer stick compute time from the compiler schedule.

    Fused ReLUs appear with 0.0 — their cycles live in the producing
    convolution's schedule entry.
    """
    seconds: dict[str, float] = {}
    for sched in graph.layers:
        seconds[sched.name] = sched.timing.total_cycles / graph.freq_hz
        if sched.fused is not None:
            seconds[sched.fused] = 0.0
    return seconds


@dataclass(frozen=True)
class SplitPlan:
    """One priced placement: a cut plus its stage timing and power."""

    model: str
    front_device: str  # "vpu" | "cpu" | "gpu"
    back_device: str
    num_sticks: int
    cut: CutPoint
    #: Bytes of the cut blob at wire precision.
    cut_bytes: int
    #: Per-request seconds of each pipeline stage.  The VPU stage
    #: includes its input or output USB transfer (which the stick's
    #: double-buffered FIFO overlaps across requests, not within one).
    front_seconds: float
    link_seconds: float
    back_seconds: float
    front_watts: float
    back_watts: float

    @property
    def name(self) -> str:
        """Routing token, e.g. ``vpu4+cpu``."""
        def token(device: str) -> str:
            return (f"vpu{self.num_sticks}" if device == "vpu"
                    else device)
        return f"{token(self.front_device)}+{token(self.back_device)}"

    @property
    def front_parallelism(self) -> int:
        """Concurrent requests the front stage can hold."""
        return self.num_sticks if self.front_device == "vpu" else 1

    @property
    def back_parallelism(self) -> int:
        """Concurrent requests the back stage can hold."""
        return self.num_sticks if self.back_device == "vpu" else 1

    @property
    def latency_seconds(self) -> float:
        """End-to-end seconds for one request (serial stages)."""
        return self.front_seconds + self.link_seconds + self.back_seconds

    @property
    def bottleneck_seconds(self) -> float:
        """Slowest pipeline stage, accounting for stage parallelism."""
        return max(self.front_seconds / self.front_parallelism,
                   self.link_seconds,
                   self.back_seconds / self.back_parallelism)

    @property
    def throughput(self) -> float:
        """Steady-state images/second of the pipelined placement."""
        return 1.0 / self.bottleneck_seconds

    @property
    def total_watts(self) -> float:
        """Summed TDP of both tiers."""
        return self.front_watts + self.back_watts

    @property
    def images_per_watt(self) -> float:
        """Energy efficiency of the placement (Eq. 1 analogue)."""
        return self.throughput / self.total_watts


class SplitPlanner:
    """Prices every valid cut of a network for one device pairing.

    Exactly one side must be ``"vpu"``; the other is a host tier from
    :data:`HOST_TIERS`.  The expensive artefacts (compiler schedule,
    MAC table, blob shapes) are computed once and shared by every
    :meth:`plan` call.
    """

    def __init__(self, network: Network, *,
                 graph: Optional[CompiledGraph] = None,
                 front: str = "vpu", back: str = "cpu",
                 num_sticks: int = 1) -> None:
        sides = (front, back)
        if sum(1 for s in sides if s == "vpu") != 1:
            raise SimulationError(
                f"exactly one side must be 'vpu', got {front}+{back}")
        host = back if front == "vpu" else front
        if host not in HOST_TIERS:
            raise SimulationError(
                f"unknown host tier {host!r}; known: "
                f"{sorted(HOST_TIERS)}")
        if not 1 <= num_sticks <= 8:
            raise SimulationError(
                f"num_sticks must be in [1, 8], got {num_sticks}")
        self.network = network
        self.front = front
        self.back = back
        self.host = host
        self.num_sticks = num_sticks
        self.graph = graph if graph is not None else compile_graph(
            network)
        self._vpu_seconds = vpu_layer_seconds(self.graph)
        self._macs = {c.name: c.macs for c in network.layer_costs(1)}
        self._shapes = network.infer_shapes(1)
        self._host_model = HOST_TIERS[host]
        self._vpu_watts = DEFAULT_TDP.watts("ncs", num_sticks)
        self._host_watts = DEFAULT_TDP.watts(host)

    def _vpu_half_seconds(self, names: tuple[str, ...]) -> float:
        return sum(self._vpu_seconds[n] for n in names)

    def _host_half_seconds(self, names: tuple[str, ...]) -> float:
        macs = sum(self._macs[n] for n in names)
        if macs == 0:
            # A MAC-free half (say, a lone softmax) is below the
            # timing model's resolution; the calibrated overheads all
            # scale with MACs, so it prices at zero.
            return 0.0
        return self._host_model.per_image_seconds(1, mac_scale(macs))

    def plan(self, cut: CutPoint) -> SplitPlan:
        """Price one cut."""
        cut_bytes = self._shapes[cut.blob].nbytes(
            WIRE_BYTES_PER_ELEMENT)
        link = usb_seconds(cut_bytes)
        if self.front == "vpu":
            input_bytes = self._shapes[
                self.network.input_blob].nbytes(WIRE_BYTES_PER_ELEMENT)
            front_s = (usb_seconds(input_bytes)
                       + self._vpu_half_seconds(cut.front_names))
            back_s = self._host_half_seconds(cut.back_names)
            front_w, back_w = self._vpu_watts, self._host_watts
        else:
            output_bytes = self._shapes[
                self.network.output_blob].nbytes(WIRE_BYTES_PER_ELEMENT)
            front_s = self._host_half_seconds(cut.front_names)
            back_s = (self._vpu_half_seconds(cut.back_names)
                      + usb_seconds(output_bytes))
            front_w, back_w = self._host_watts, self._vpu_watts
        return SplitPlan(
            model=self.network.name,
            front_device=self.front,
            back_device=self.back,
            num_sticks=self.num_sticks,
            cut=cut,
            cut_bytes=cut_bytes,
            front_seconds=front_s,
            link_seconds=link,
            back_seconds=back_s,
            front_watts=front_w,
            back_watts=back_w)

    def sweep(self) -> list[SplitPlan]:
        """Price every valid cut, in layer order."""
        return [self.plan(cut) for cut in enumerate_cuts(self.network)]

    def best(self, objective: str = "latency") -> SplitPlan:
        """The optimal plan under an objective (ties: earliest cut)."""
        plans = self.sweep()
        if not plans:
            raise SimulationError(
                f"network {self.network.name!r} has no valid cuts")
        if objective == "latency":
            return min(plans, key=lambda p: (p.latency_seconds,
                                             p.cut.index))
        if objective == "throughput":
            return min(plans, key=lambda p: (-p.throughput,
                                             p.cut.index))
        if objective == "energy":
            return min(plans, key=lambda p: (-p.images_per_watt,
                                             p.cut.index))
        raise SimulationError(
            f"unknown objective {objective!r}; choose latency, "
            f"throughput or energy")


@dataclass(frozen=True)
class DevicePoint:
    """A single-device reference placement for the Pareto comparison."""

    device: str
    latency_seconds: float
    throughput: float
    watts: float

    @property
    def images_per_watt(self) -> float:
        """Energy efficiency of the single-device placement."""
        return self.throughput / self.watts


def single_device_points(network: Network, graph: CompiledGraph,
                         num_sticks: int = 1) -> list[DevicePoint]:
    """The paper's monolithic placements of *network*, priced the same
    way the split planner prices halves.

    Host latency is quoted at batch 1 (the latency-critical setting)
    and host throughput at batch 16, matching the paper's Fig. 8b
    projection.  VPU throughput scales linearly in sticks — each stick
    runs the whole network on its own requests.
    """
    scale = mac_scale(network.total_macs(1))
    points = []
    for host, model in sorted(HOST_TIERS.items()):
        points.append(DevicePoint(
            device=host,
            latency_seconds=model.per_image_seconds(1, scale),
            throughput=model.throughput(16, scale),
            watts=DEFAULT_TDP.watts(host)))
    vpu_latency = (usb_seconds(graph.input_tensor_bytes)
                   + graph.inference_seconds
                   + usb_seconds(graph.output_tensor_bytes))
    for n in sorted({1, num_sticks}):
        points.append(DevicePoint(
            device=f"vpu{n}",
            latency_seconds=vpu_latency,
            throughput=n / graph.inference_seconds,
            watts=DEFAULT_TDP.watts("ncs", n)))
    return points


def pareto_indices(plans: list[SplitPlan]) -> set[int]:
    """Indices of plans on the (latency, throughput, img/W) frontier."""
    frontier: set[int] = set()
    for i, p in enumerate(plans):
        dominated = any(
            q.latency_seconds <= p.latency_seconds
            and q.throughput >= p.throughput
            and q.images_per_watt >= p.images_per_watt
            and (q.latency_seconds < p.latency_seconds
                 or q.throughput > p.throughput
                 or q.images_per_watt > p.images_per_watt)
            for q in plans)
        if not dominated:
            frontier.add(i)
    return frontier


def dominating_plans(plans: list[SplitPlan],
                     singles: list[DevicePoint]
                     ) -> tuple[Optional[DevicePoint], list[SplitPlan]]:
    """Split plans that strictly beat the worst single device.

    Returns the worst single-device placement by latency, plus every
    plan with strictly lower latency at no loss of throughput — the
    paper-level claim the split sweep is built to check.
    """
    if not singles:
        return None, []
    worst = max(singles, key=lambda d: d.latency_seconds)
    winners = [p for p in plans
               if p.latency_seconds < worst.latency_seconds
               and p.throughput >= worst.throughput]
    return worst, winners
