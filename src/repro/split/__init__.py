"""Split inference across device tiers (repro.split).

Cost-based layer partitioning of a network between the VPU and a host
tier, pipelined execution of the two halves, and the sweep/reporting
machinery that maps the placement design space against the paper's
single-device numbers.
"""

from repro.split.partition import (
    CutPoint,
    enumerate_cuts,
    half_policies,
    split_network,
)
from repro.split.plan import (
    DevicePoint,
    SplitPlan,
    SplitPlanner,
    dominating_plans,
    pareto_indices,
    single_device_points,
    usb_seconds,
    vpu_layer_seconds,
)
from repro.split.report import render_split_table
from repro.split.target import SplitTarget, build_split_target

__all__ = [
    "CutPoint",
    "DevicePoint",
    "SplitPlan",
    "SplitPlanner",
    "SplitTarget",
    "build_split_target",
    "dominating_plans",
    "enumerate_cuts",
    "half_policies",
    "pareto_indices",
    "render_split_table",
    "single_device_points",
    "split_network",
    "usb_seconds",
    "vpu_layer_seconds",
]
