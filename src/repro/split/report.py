"""Deterministic text rendering of a split-placement sweep.

The table maps the full latency/throughput/energy design space of a
device pairing — every valid cut, its three stage times, and whether
it sits on the Pareto frontier — against the paper's single-device
placements, ending with a greppable verdict line on whether the best
cut strictly dominates the worst single device (lower latency at no
loss of throughput).  Output is a pure function of the plans, so CI
can diff two runs byte-for-byte.
"""

from __future__ import annotations

from repro.split.plan import (
    DevicePoint,
    SplitPlan,
    dominating_plans,
    pareto_indices,
)


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:10.3f}"


def render_split_table(plans: list[SplitPlan],
                       singles: list[DevicePoint],
                       objective: str = "latency") -> str:
    """Render the sweep, reference points and dominance verdict."""
    lines: list[str] = []
    if not plans:
        return "split placement sweep: no valid cuts\n"
    head = plans[0]
    lines.append(
        f"split placement sweep: {head.model}, {head.name} "
        f"(front={head.front_device} x{head.front_parallelism}, "
        f"back={head.back_device} x{head.back_parallelism})")
    lines.append(
        f"  {'cut (last front layer)':<28} {'xfer KB':>8} "
        f"{'front ms':>10} {'link ms':>10} {'back ms':>10} "
        f"{'e2e ms':>10} {'img/s':>8} {'img/W':>8}  pareto")
    frontier = pareto_indices(plans)
    for i, p in enumerate(plans):
        lines.append(
            f"  {p.cut.front_names[-1]:<28} "
            f"{p.cut_bytes / 1024:8.1f} "
            f"{_ms(p.front_seconds)} {_ms(p.link_seconds)} "
            f"{_ms(p.back_seconds)} {_ms(p.latency_seconds)} "
            f"{p.throughput:8.1f} {p.images_per_watt:8.2f}"
            f"  {'*' if i in frontier else '-'}")
    lines.append("")
    lines.append("single-device placements:")
    lines.append(
        f"  {'device':<28} {'e2e ms':>10} {'img/s':>8} {'img/W':>8}")
    for d in singles:
        lines.append(
            f"  {d.device:<28} {_ms(d.latency_seconds)} "
            f"{d.throughput:8.1f} {d.images_per_watt:8.2f}")
    lines.append("")

    if objective == "latency":
        best = min(plans, key=lambda p: (p.latency_seconds,
                                         p.cut.index))
    elif objective == "throughput":
        best = min(plans, key=lambda p: (-p.throughput, p.cut.index))
    else:
        best = min(plans, key=lambda p: (-p.images_per_watt,
                                         p.cut.index))
    lines.append(
        f"best cut ({objective}): after {best.cut.front_names[-1]} "
        f"[{best.cut.blob}] — "
        f"{best.latency_seconds * 1e3:.3f} ms, "
        f"{best.throughput:.1f} img/s, "
        f"{best.images_per_watt:.2f} img/W")
    worst, winners = dominating_plans(plans, singles)
    if worst is not None:
        lines.append(
            f"worst single device on latency: {worst.device} "
            f"({worst.latency_seconds * 1e3:.3f} ms, "
            f"{worst.throughput:.1f} img/s)")
        verdict = "yes" if winners else "no"
        lines.append(
            f"best cut dominates worst single device: {verdict} "
            f"({len(winners)}/{len(plans)} cuts at lower latency "
            f"and >= throughput)")
    return "\n".join(lines) + "\n"
