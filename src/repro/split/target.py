"""Split-inference serving target: two device tiers, one pipeline.

:class:`SplitTarget` plugs a priced :class:`~repro.split.plan.SplitPlan`
into the serving framework's :class:`~repro.ncsw.targets.TargetDevice`
interface.  Each request flows through three FIFO-granted resources —
front compute units, the USB link, back compute units — so pipelining
emerges from the simulation itself: the front half of request ``k+1``
runs while the back half of request ``k`` is still computing, and the
makespan of an N-request batch converges on
``latency + (N-1) * bottleneck`` exactly as the cost model predicts.

Functionally, the front half executes with the placement's precision
policy and captures the cut blob; the back half consumes it with input
re-quantisation disabled (:func:`~repro.split.partition.half_policies`),
so the composed result is bit-identical to a monolithic forward under
:attr:`SplitTarget.equivalent_policy`.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

import numpy as np

from repro.errors import FrameworkError
from repro.ncsw.results import InferenceRecord
from repro.ncsw.sources import WorkItem
from repro.ncsw.targets import TargetDevice, record_from_probs
from repro.nn.graph import Network
from repro.numerics.quant import Precision, PrecisionPolicy
from repro.sim.core import Environment, Event
from repro.sim.resources import Resource
from repro.split.partition import half_policies, split_network
from repro.split.plan import SplitPlan, SplitPlanner
from repro.vpu.compiler.compile import CompiledGraph

#: Host-process warm-up charged once by :meth:`SplitTarget.prepare`
#: (framework start + graph allocation on both tiers; the stick boot
#: is folded in, matching the host targets' constant).
PREPARE_SECONDS = 0.5


class SplitTarget(TargetDevice):
    """A two-tier pipelined placement behind the TargetDevice API."""

    def __init__(self, network: Network, plan: SplitPlan, *,
                 functional: bool = True) -> None:
        self.network = network
        self.plan = plan
        self.cut = plan.cut
        self.functional = functional
        self.name = plan.name
        self.front_network, self.back_network = split_network(
            network, plan.cut)
        #: The monolithic precision policy this placement reproduces
        #: bit-for-bit: FP16 on whichever half runs on the VPU, FP32
        #: elsewhere.  The vpu-front policy also rounds the network
        #: input (the host-side FP16 conversion before USB submission);
        #: the vpu-back policy instead rounds the cut blob, because its
        #: producing host layer sits outside the FP16 layer filter and
        #: the wire conversion happens at the stick boundary.
        if plan.front_device == "vpu":
            self.equivalent_policy = PrecisionPolicy(
                Precision.FP16, True, True,
                layer_filter=frozenset(plan.cut.front_names),
                quantize_input=True)
        else:
            self.equivalent_policy = PrecisionPolicy.fp16_only(
                plan.cut.back_names)
        self.front_policy, self.back_policy = half_policies(
            self.equivalent_policy)
        self._env: Optional[Environment] = None
        self._front_units: Optional[Resource] = None
        self._link: Optional[Resource] = None
        self._back_units: Optional[Resource] = None
        self._front_track = f"{self.name}/front"
        self._back_track = f"{self.name}/back"

    # -- TargetDevice interface -----------------------------------------
    @property
    def device_count(self) -> int:
        """Sticks plus the one host device."""
        return self.plan.num_sticks + 1

    @property
    def tdp_watts(self) -> float:  # type: ignore[override]
        return self.plan.total_watts

    @property
    def preferred_batch_size(self) -> int:
        """Enough in-flight requests to keep every stage busy."""
        return max(2, self.plan.front_parallelism
                   + self.plan.back_parallelism)

    def prepare(self, env: Environment) -> Event:
        self._env = env
        self._front_units = Resource(env, self.plan.front_parallelism)
        self._link = Resource(env, 1)
        self._back_units = Resource(env, self.plan.back_parallelism)
        return env.timeout(PREPARE_SECONDS)

    def process_batch(self, items: List[WorkItem]) -> Event:
        if self._env is None:
            raise FrameworkError(f"{self.name}: prepare() not called")
        return self._env.process(self._process(items))

    # -- execution ------------------------------------------------------
    def _forward(self, items: List[WorkItem]) -> Optional[np.ndarray]:
        """Composed split forward of a batch (None in timing mode)."""
        tensors = [i.tensor for i in items]
        if not self.functional or any(t is None for t in tensors):
            return None
        x = np.stack(tensors)
        _, captured = self.front_network.forward_with_blobs(
            x, self.front_policy, capture=(self.cut.blob,))
        out = self.back_network.forward(
            captured[self.cut.blob], self.back_policy)
        return out.reshape(len(items), -1)

    def _process(self, items: List[WorkItem]
                 ) -> Generator[Event, Any, List[InferenceRecord]]:
        assert self._env is not None
        probs = self._forward(items)
        procs = [self._env.process(self._pipeline(
            item, probs[pos] if probs is not None else None))
            for pos, item in enumerate(items)]
        values = yield self._env.all_of(procs)
        return [values[p] for p in procs]

    def _pipeline(self, item: WorkItem, flat: Optional[np.ndarray]
                  ) -> Generator[Event, Any, InferenceRecord]:
        """One request's walk through front -> link -> back."""
        env = self._env
        assert env is not None
        plan = self.plan
        front_units, link, back_units = (
            self._front_units, self._link, self._back_units)
        assert (front_units is not None and link is not None
                and back_units is not None)
        t0 = env.now
        obs = env.obs
        if obs is not None and item.trace is not None:
            obs.reqtrace.hop(item.trace, "device_submit",
                             track=self.name)

        req = front_units.request()
        yield req
        span = None
        if obs is not None:
            span = obs.tracer.begin("split_front",
                                    track=self._front_track)
        yield env.timeout(plan.front_seconds)
        if obs is not None:
            obs.tracer.end(span)
        front_units.release(req)
        if obs is not None and item.trace is not None:
            obs.reqtrace.hop(item.trace, "split_front_done",
                             track=self._front_track)

        req = link.request()
        yield req
        yield env.timeout(plan.link_seconds)
        link.release(req)
        if obs is not None and item.trace is not None:
            obs.reqtrace.hop(item.trace, "split_xfer_done",
                             track=self.name)

        req = back_units.request()
        yield req
        span = None
        if obs is not None:
            span = obs.tracer.begin("split_back",
                                    track=self._back_track)
        yield env.timeout(plan.back_seconds)
        if obs is not None:
            obs.tracer.end(span)
        back_units.release(req)
        if obs is not None and item.trace is not None:
            obs.reqtrace.hop(item.trace, "device_done",
                             track=self._back_track)
        return record_from_probs(item, flat, self.name, t0, env.now)


def build_split_target(network: Network, *,
                       graph: Optional[CompiledGraph] = None,
                       front: str = "vpu", back: str = "cpu",
                       num_sticks: int = 1,
                       objective: str = "latency",
                       cut_index: Optional[int] = None,
                       functional: bool = True) -> SplitTarget:
    """Plan (or pick) a cut and wrap it as a serving target."""
    planner = SplitPlanner(network, graph=graph, front=front,
                           back=back, num_sticks=num_sticks)
    if cut_index is None:
        plan = planner.best(objective)
    else:
        from repro.split.partition import enumerate_cuts
        for cut in enumerate_cuts(network):
            if cut.index == cut_index:
                plan = planner.plan(cut)
                break
        else:
            raise FrameworkError(
                f"no valid cut at layer index {cut_index}")
    return SplitTarget(network, plan, functional=functional)
