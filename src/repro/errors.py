"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Subsystem-specific errors mirror
the status codes of the real platforms they model (e.g. the NCSDK's
``mvncStatus`` enumeration maps onto :class:`NCAPIError` subclasses).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Errors raised by the discrete-event simulation kernel."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still blocked."""


class ShapeError(ReproError):
    """Tensor shape or layout mismatch."""


class GraphError(ReproError):
    """Malformed network graph (cycles, dangling blobs, duplicate names)."""


class CompileError(ReproError):
    """The VPU graph compiler could not schedule or tile the network."""


class AllocationError(CompileError):
    """CMX / DDR allocation failed (working set exceeds device memory)."""


class NCAPIError(ReproError):
    """Base class mirroring non-OK ``mvncStatus`` codes of the NCSDK."""

    status = "MVNC_ERROR"


class DeviceNotFound(NCAPIError):
    """No NCS device with the requested index exists on the bus."""

    status = "MVNC_DEVICE_NOT_FOUND"


class DeviceBusy(NCAPIError):
    """The device FIFO is full or the device is mid-boot."""

    status = "MVNC_BUSY"


class InvalidGraphFile(NCAPIError):
    """The blob handed to ``allocate_graph`` is not a compiled graph."""

    status = "MVNC_UNSUPPORTED_GRAPH_FILE"


class DeviceClosed(NCAPIError):
    """Operation attempted on a closed device handle."""

    status = "MVNC_INVALID_HANDLE"


class NoData(NCAPIError):
    """``get_result`` called with no inference in flight."""

    status = "MVNC_NO_DATA"


class DeviceLost(NCAPIError):
    """The device died mid-run (hot-unplug, firmware crash)."""

    status = "MVNC_DEVICE_LOST"


class ThermalShutdown(DeviceLost):
    """The stick's firmware killed itself on over-temperature."""

    status = "MVNC_THERMAL_SHUTDOWN"


class DeviceTimeout(NCAPIError):
    """A per-call NCAPI deadline expired (hung firmware suspected)."""

    status = "MVNC_TIMEOUT"


class USBError(ReproError):
    """USB topology / transfer model errors."""


class DatasetError(ReproError):
    """Synthetic ILSVRC dataset construction or lookup failure."""


class PowerError(ReproError):
    """Unknown device in the TDP registry or invalid power query."""


class FrameworkError(ReproError):
    """NCSw framework wiring errors (unknown target, empty source...)."""


class ObservabilityError(ReproError):
    """Misuse of the tracing/metrics layer (repro.obs)."""


class FlowError(ReproError):
    """Workflow compilation or execution errors (repro.flow)."""
