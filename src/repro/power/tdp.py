"""TDP registry.

Datasheet thermal-design-power figures for every device class in the
paper's comparison (§V and its refs [36], [37]).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PowerError


@dataclass(frozen=True)
class TDP:
    """One device's thermal design power entry."""

    name: str
    watts: float
    source: str

    def __post_init__(self) -> None:
        if self.watts <= 0:
            raise PowerError(f"TDP must be positive, got {self.watts}")


class TDPRegistry:
    """Lookup table of TDP figures by device name."""

    def __init__(self, entries: list[TDP]) -> None:
        self._entries: dict[str, TDP] = {}
        for entry in entries:
            if entry.name in self._entries:
                raise PowerError(f"duplicate TDP entry {entry.name!r}")
            self._entries[entry.name] = entry

    def watts(self, name: str, count: int = 1) -> float:
        """Total TDP of *count* devices of type *name*."""
        if count < 1:
            raise PowerError(f"count must be >= 1, got {count}")
        return self.get(name).watts * count

    def get(self, name: str) -> TDP:
        """Full TDP entry for a device name."""
        try:
            return self._entries[name]
        except KeyError:
            raise PowerError(
                f"no TDP entry for {name!r}; known: "
                f"{sorted(self._entries)}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def names(self) -> list[str]:
        """Sorted device names in the registry."""
        return sorted(self._entries)


#: The paper's figures. "ncs" is a whole stick (chip + DDR + USB PHY +
#: regulator); the Fig. 8a img/W numbers divide by this one.
DEFAULT_TDP = TDPRegistry([
    TDP("cpu", 80.0, "Intel ARK: Xeon E5-2609v2 TDP"),
    TDP("gpu", 80.0, "NVIDIA: Quadro K4000 board power"),
    TDP("vpu_chip", 0.9, "Movidius Myriad 2 MA2450 datasheet"),
    TDP("ncs", 2.5, "AnandTech NCS launch coverage [36]"),
])
