"""Throughput-per-Watt (the paper's Eq. 1) and energy accounting."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PowerError


def throughput_per_watt(images_per_second: float, watts: float) -> float:
    """Eq. (1): ThroughputWatt = (Images / Second) / TDP."""
    if watts <= 0:
        raise PowerError(f"watts must be positive, got {watts}")
    if images_per_second < 0:
        raise PowerError("throughput must be >= 0")
    return images_per_second / watts


def tdp_reduction(baseline_watts: float, new_watts: float) -> float:
    """How many times smaller the new configuration's TDP is.

    The paper's headline "reducing the TDP up to 8x" compares the 80 W
    CPU against the multi-VPU rig's chip-level TDP.
    """
    if baseline_watts <= 0 or new_watts <= 0:
        raise PowerError("TDP values must be positive")
    return baseline_watts / new_watts


@dataclass
class EnergyAccount:
    """Accumulates (watts x seconds) contributions into joules."""

    joules: float = 0.0
    _entries: list[tuple[str, float]] = field(default_factory=list)

    def add(self, label: str, watts: float, seconds: float) -> None:
        """Charge *watts* over *seconds* under *label*."""
        if watts < 0 or seconds < 0:
            raise PowerError("watts and seconds must be >= 0")
        energy = watts * seconds
        self.joules += energy
        self._entries.append((label, energy))

    def by_label(self) -> dict[str, float]:
        """Joules per label."""
        out: dict[str, float] = {}
        for label, energy in self._entries:
            out[label] = out.get(label, 0.0) + energy
        return out

    def images_per_joule(self, images: int) -> float:
        """Efficiency expressed per unit energy."""
        if self.joules <= 0:
            raise PowerError("no energy accounted")
        if images < 0:
            raise PowerError("images must be >= 0")
        return images / self.joules
