"""Power models: TDP registry and throughput-per-Watt metrics.

The paper's efficiency analysis (§V, Fig. 8a) is explicitly TDP-based
— "we assume the maximum power consumption was required" — using the
datasheet figures: 80 W for the Xeon E5-2609v2, 80 W for the Quadro
K4000, 0.9 W for the Myriad 2 chip and 2.5 W peak for a whole NCS
stick.  This package encodes those constants and Eq. (1).
"""

from repro.power.tdp import TDP, TDPRegistry, DEFAULT_TDP
from repro.power.metrics import (
    throughput_per_watt,
    tdp_reduction,
    EnergyAccount,
)

__all__ = [
    "TDP",
    "TDPRegistry",
    "DEFAULT_TDP",
    "throughput_per_watt",
    "tdp_reduction",
    "EnergyAccount",
]
