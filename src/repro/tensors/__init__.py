"""Tensor substrate: Caffe-style NCHW blobs and convolution lowering.

The NN engine (:mod:`repro.nn`) operates on plain NumPy arrays in NCHW
layout; this package centralises the shape arithmetic (padding, strides,
output geometry) and the im2col lowering that turns convolutions into
GEMMs — the same lowering both Caffe-MKL and the NCSDK compiler perform.
"""

from repro.tensors.layout import (
    BlobShape,
    conv_output_hw,
    pool_output_hw,
)
from repro.tensors.im2col import im2col, col2im
from repro.tensors.tensor import Tensor

__all__ = [
    "BlobShape",
    "conv_output_hw",
    "pool_output_hw",
    "im2col",
    "col2im",
    "Tensor",
]
