"""im2col / col2im convolution lowering.

Convolutions are lowered to GEMM by unfolding input patches into a
matrix — the strategy used by Caffe (and by the NCSDK's SHAVE kernels
for large filters).  The implementation is fully vectorised: patch
indices are computed once with broadcasting and the gather is a single
fancy-indexing operation, per the HPC guide's "vectorize the loops"
idiom.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.tensors.layout import conv_output_hw


def _patch_indices(c: int, h: int, w: int, kernel: int, stride: int,
                   pad: int) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                      int, int]:
    """Index arrays mapping (C*K*K, OH*OW) columns into the padded input."""
    out_h, out_w = conv_output_hw(h, w, kernel, stride, pad)

    # Row index of each element within a patch, replicated per channel.
    i0 = np.repeat(np.arange(kernel), kernel)
    i0 = np.tile(i0, c)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kernel), kernel * c)
    j1 = stride * np.tile(np.arange(out_w), out_h)

    rows = i0.reshape(-1, 1) + i1.reshape(1, -1)
    cols = j0.reshape(-1, 1) + j1.reshape(1, -1)
    chans = np.repeat(np.arange(c), kernel * kernel).reshape(-1, 1)
    return chans, rows, cols, out_h, out_w


def im2col(x: np.ndarray, kernel: int, stride: int,
           pad: int) -> np.ndarray:
    """Unfold NCHW input into a (N, C*K*K, OH*OW) patch matrix."""
    if x.ndim != 4:
        raise ShapeError(f"im2col expects NCHW input, got ndim={x.ndim}")
    n, c, h, w = x.shape
    chans, rows, cols, _, _ = _patch_indices(c, h, w, kernel, stride, pad)

    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)),
                   mode="constant")
    return x[:, chans, rows, cols]


def col2im(cols: np.ndarray, x_shape: tuple[int, int, int, int],
           kernel: int, stride: int, pad: int) -> np.ndarray:
    """Fold a patch matrix back into NCHW, summing overlapping patches.

    Inverse-adjoint of :func:`im2col`; not needed for inference but
    included (and tested) to validate the index construction.
    """
    n, c, h, w = x_shape
    chans, rows, cols_idx, _, _ = _patch_indices(
        c, h, w, kernel, stride, pad)
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad),
                      dtype=cols.dtype)
    # scatter-add each patch element back to its source location
    np.add.at(padded, (slice(None), chans, rows, cols_idx), cols)
    if pad > 0:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


def conv2d_gemm(x: np.ndarray, weight: np.ndarray, bias: np.ndarray,
                stride: int, pad: int) -> np.ndarray:
    """Convolution via im2col + GEMM.

    Parameters
    ----------
    x:
        Input, NCHW ``(N, C, H, W)``, float32.
    weight:
        Filters ``(K_out, C, KH, KW)`` with KH == KW.
    bias:
        Per-output-channel bias ``(K_out,)``.
    """
    k_out, c_in, kh, kw = weight.shape
    if kh != kw:
        raise ShapeError(f"only square kernels supported, got {kh}x{kw}")
    if x.shape[1] != c_in:
        raise ShapeError(
            f"input channels {x.shape[1]} != filter channels {c_in}")
    n = x.shape[0]
    out_h, out_w = conv_output_hw(x.shape[2], x.shape[3], kh, stride, pad)

    patches = im2col(x, kh, stride, pad)          # (N, C*K*K, OH*OW)
    wmat = weight.reshape(k_out, -1)              # (K_out, C*K*K)
    # (K_out, C*K*K) @ (N, C*K*K, OH*OW) -> (N, K_out, OH*OW)
    out = np.einsum("kp,npq->nkq", wmat, patches,
                    optimize=True).astype(x.dtype, copy=False)
    out += bias.reshape(1, -1, 1)
    return out.reshape(n, k_out, out_h, out_w)
