"""im2col / col2im convolution lowering.

Convolutions are lowered to GEMM by unfolding input patches into a
matrix — the strategy used by Caffe (and by the NCSDK's SHAVE kernels
for large filters).  The implementation is fully vectorised: patch
indices are computed once with broadcasting and the gather is a single
``take`` over the flattened padded input.

Hot-path design (this module sits under every functional forward):

* Patch index arrays depend only on ``(c, h, w, kernel, stride, pad)``
  and are cached in a bounded LRU (Caffe computes its im2col buffer
  geometry once per layer for the same reason).
* Padded inputs are staged into a reusable per-shape scratch buffer —
  the zero border is written once when the buffer is created and only
  the interior is refreshed per call, replacing a full ``np.pad``.
* :func:`conv2d_gemm` preallocates the GEMM output and folds the bias
  add into it, keeping the whole lowering at two materialised
  temporaries (patch matrix + output).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.errors import ShapeError
from repro.tensors.layout import conv_output_hw

#: Bounded LRU sizes.  GoogLeNet at paper geometry has ~60 distinct
#: convolution configurations; 128 holds every network in the zoo
#: without thrash while bounding memory on pathological workloads.
_INDEX_CACHE_SIZE = 128
#: Scratch buffers are heavier (one padded activation tensor each),
#: so keep fewer of them.
_SCRATCH_CACHE_SIZE = 16

_index_cache: OrderedDict[tuple, tuple[np.ndarray, int, int]] = \
    OrderedDict()
_scratch_cache: OrderedDict[tuple, np.ndarray] = OrderedDict()


def clear_patch_caches() -> None:
    """Drop cached patch indices and scratch buffers (for tests)."""
    _index_cache.clear()
    _scratch_cache.clear()


def patch_cache_info() -> dict[str, int]:
    """Current cache occupancy (observability/test helper)."""
    return {"index_entries": len(_index_cache),
            "scratch_entries": len(_scratch_cache)}


def _patch_indices(c: int, h: int, w: int, kernel: int, stride: int,
                   pad: int) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                      int, int]:
    """Index arrays mapping (C*K*K, OH*OW) columns into the padded input.

    Kept for API compatibility (and the col2im scatter); derived from
    the cached flat indices, so both callers share one cache entry.
    """
    flat, out_h, out_w = _flat_patch_indices(c, h, w, kernel, stride,
                                             pad)
    hp, wp = h + 2 * pad, w + 2 * pad
    chans, rem = np.divmod(flat, hp * wp)
    rows, cols = np.divmod(rem, wp)
    return chans, rows, cols, out_h, out_w


def _flat_patch_indices(c: int, h: int, w: int, kernel: int,
                        stride: int, pad: int
                        ) -> tuple[np.ndarray, int, int]:
    """Cached flat indices into the flattened padded (C, HP, WP) volume.

    Returns ``(flat, out_h, out_w)`` where ``flat`` has shape
    ``(C*K*K, OH*OW)`` and indexes ``x_padded.reshape(n, -1)``.
    """
    key = (c, h, w, kernel, stride, pad)
    cached = _index_cache.get(key)
    if cached is not None:
        _index_cache.move_to_end(key)
        return cached

    out_h, out_w = conv_output_hw(h, w, kernel, stride, pad)
    hp, wp = h + 2 * pad, w + 2 * pad

    # Row index of each element within a patch, replicated per channel.
    i0 = np.repeat(np.arange(kernel), kernel)
    i0 = np.tile(i0, c)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kernel), kernel * c)
    j1 = stride * np.tile(np.arange(out_w), out_h)

    rows = i0.reshape(-1, 1) + i1.reshape(1, -1)
    cols = j0.reshape(-1, 1) + j1.reshape(1, -1)
    chans = np.repeat(np.arange(c), kernel * kernel).reshape(-1, 1)
    flat = (chans * hp + rows) * wp + cols
    if flat.size and int(flat.max()) < np.iinfo(np.int32).max:
        flat = flat.astype(np.int32)  # halves cache memory

    _index_cache[key] = (flat, out_h, out_w)
    while len(_index_cache) > _INDEX_CACHE_SIZE:
        _index_cache.popitem(last=False)
    return flat, out_h, out_w


def _padded_input(x: np.ndarray, pad: int) -> np.ndarray:
    """Stage *x* into a zero-bordered scratch buffer (reused per shape).

    The border is zeroed exactly once, when the buffer is allocated:
    every call overwrites only the interior, so the invariant holds
    across reuses.  Callers must copy out of the buffer (the im2col
    gather does) — the same buffer is returned for every call with
    this shape and dtype.
    """
    n, c, h, w = x.shape
    key = (n, c, h, w, pad, x.dtype.str)
    buf = _scratch_cache.get(key)
    if buf is None:
        buf = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=x.dtype)
        _scratch_cache[key] = buf
        while len(_scratch_cache) > _SCRATCH_CACHE_SIZE:
            _scratch_cache.popitem(last=False)
    else:
        _scratch_cache.move_to_end(key)
    buf[:, :, pad:pad + h, pad:pad + w] = x
    return buf


def im2col(x: np.ndarray, kernel: int, stride: int,
           pad: int) -> np.ndarray:
    """Unfold NCHW input into a (N, C*K*K, OH*OW) patch matrix."""
    if x.ndim != 4:
        raise ShapeError(f"im2col expects NCHW input, got ndim={x.ndim}")
    n, c, h, w = x.shape
    flat, _, _ = _flat_patch_indices(c, h, w, kernel, stride, pad)
    xp = _padded_input(x, pad) if pad > 0 else x
    flat_view = np.ascontiguousarray(xp).reshape(n, -1)
    return flat_view.take(flat.ravel(), axis=1).reshape(
        n, flat.shape[0], flat.shape[1])


def col2im(cols: np.ndarray, x_shape: tuple[int, int, int, int],
           kernel: int, stride: int, pad: int) -> np.ndarray:
    """Fold a patch matrix back into NCHW, summing overlapping patches.

    Inverse-adjoint of :func:`im2col`; not needed for inference but
    included (and tested) to validate the index construction.  Shares
    the cached index arrays with :func:`im2col`.
    """
    n, c, h, w = x_shape
    flat, _, _ = _flat_patch_indices(c, h, w, kernel, stride, pad)
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad),
                      dtype=cols.dtype)
    # scatter-add each patch element back to its source location
    np.add.at(padded.reshape(n, -1), (slice(None), flat), cols)
    if pad > 0:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


def conv2d_gemm(x: np.ndarray, weight: np.ndarray, bias: np.ndarray,
                stride: int, pad: int) -> np.ndarray:
    """Convolution via im2col + GEMM.

    The output dtype always equals the input dtype: the GEMM runs in
    the promoted precision of ``(x, weight)`` and the bias is cast to
    the output dtype before the in-place add, so a float16 input can
    never silently promote through float32/float64 bias broadcasting.

    Parameters
    ----------
    x:
        Input, NCHW ``(N, C, H, W)``, float32 or float16.
    weight:
        Filters ``(K_out, C, KH, KW)`` with KH == KW.
    bias:
        Per-output-channel bias ``(K_out,)``.
    """
    k_out, c_in, kh, kw = weight.shape
    if kh != kw:
        raise ShapeError(f"only square kernels supported, got {kh}x{kw}")
    if x.shape[1] != c_in:
        raise ShapeError(
            f"input channels {x.shape[1]} != filter channels {c_in}")
    n = x.shape[0]
    out_h, out_w = conv_output_hw(x.shape[2], x.shape[3], kh, stride, pad)

    patches = im2col(x, kh, stride, pad)          # (N, C*K*K, OH*OW)
    wmat = weight.reshape(k_out, -1)              # (K_out, C*K*K)
    # (K_out, C*K*K) @ (N, C*K*K, OH*OW) -> (N, K_out, OH*OW), into a
    # preallocated accumulator in the promoted working precision.
    acc_dtype = np.promote_types(x.dtype, wmat.dtype)
    out = np.empty((n, k_out, patches.shape[2]), dtype=acc_dtype)
    np.matmul(wmat.astype(acc_dtype, copy=False),
              patches.astype(acc_dtype, copy=False), out=out)
    out = out.astype(x.dtype, copy=False)
    out += bias.reshape(1, -1, 1).astype(x.dtype, copy=False)
    assert out.dtype == x.dtype, (
        f"conv2d_gemm output dtype {out.dtype} != input {x.dtype}")
    return out.reshape(n, k_out, out_h, out_w)
