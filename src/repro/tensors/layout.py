"""Shape and layout arithmetic for NCHW blobs.

All geometry formulas match Caffe's conventions, since both the paper's
CPU/GPU baselines and the NCSDK consume Caffe models:

* convolution output:  ``floor((in + 2*pad - kernel) / stride) + 1``
* pooling output:      ``ceil((in + 2*pad - kernel) / stride) + 1``
  (Caffe uses ceil for pooling, which is why GoogLeNet's pool layers
  sometimes emit one extra row/column).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ShapeError


@dataclass(frozen=True)
class BlobShape:
    """Shape of a 4-D NCHW blob."""

    n: int
    c: int
    h: int
    w: int

    def __post_init__(self) -> None:
        for name, v in (("n", self.n), ("c", self.c),
                        ("h", self.h), ("w", self.w)):
            if v < 1:
                raise ShapeError(f"BlobShape.{name} must be >= 1, got {v}")

    @property
    def count(self) -> int:
        """Total number of elements."""
        return self.n * self.c * self.h * self.w

    @property
    def spatial(self) -> tuple[int, int]:
        """(height, width) pair."""
        return (self.h, self.w)

    def nbytes(self, bytes_per_element: int = 4) -> int:
        """Size of the blob in bytes at the given element width."""
        return self.count * bytes_per_element

    def as_tuple(self) -> tuple[int, int, int, int]:
        """The shape as a plain (n, c, h, w) tuple."""
        return (self.n, self.c, self.h, self.w)

    def with_batch(self, n: int) -> "BlobShape":
        """Same shape with a different batch dimension."""
        return BlobShape(n, self.c, self.h, self.w)

    def __str__(self) -> str:
        return f"{self.n}x{self.c}x{self.h}x{self.w}"


def conv_output_hw(in_h: int, in_w: int, kernel: int, stride: int,
                   pad: int) -> tuple[int, int]:
    """Output spatial size of a convolution (Caffe floor semantics)."""
    _validate_geometry(in_h, in_w, kernel, stride, pad)
    out_h = (in_h + 2 * pad - kernel) // stride + 1
    out_w = (in_w + 2 * pad - kernel) // stride + 1
    if out_h < 1 or out_w < 1:
        raise ShapeError(
            f"conv produces empty output: in={in_h}x{in_w} k={kernel} "
            f"s={stride} p={pad}")
    return out_h, out_w


def pool_output_hw(in_h: int, in_w: int, kernel: int, stride: int,
                   pad: int) -> tuple[int, int]:
    """Output spatial size of pooling (Caffe ceil semantics).

    Caffe additionally clips the last window so it starts inside the
    padded input; we replicate that adjustment.
    """
    _validate_geometry(in_h, in_w, kernel, stride, pad)
    out_h = int(math.ceil((in_h + 2 * pad - kernel) / stride)) + 1
    out_w = int(math.ceil((in_w + 2 * pad - kernel) / stride)) + 1
    if pad > 0:
        # Last pooling window must start strictly before pad+input end.
        if (out_h - 1) * stride >= in_h + pad:
            out_h -= 1
        if (out_w - 1) * stride >= in_w + pad:
            out_w -= 1
    if out_h < 1 or out_w < 1:
        raise ShapeError(
            f"pool produces empty output: in={in_h}x{in_w} k={kernel} "
            f"s={stride} p={pad}")
    return out_h, out_w


def _validate_geometry(in_h: int, in_w: int, kernel: int, stride: int,
                       pad: int) -> None:
    if in_h < 1 or in_w < 1:
        raise ShapeError(f"input size must be >= 1, got {in_h}x{in_w}")
    if kernel < 1:
        raise ShapeError(f"kernel must be >= 1, got {kernel}")
    if stride < 1:
        raise ShapeError(f"stride must be >= 1, got {stride}")
    if pad < 0:
        raise ShapeError(f"pad must be >= 0, got {pad}")
    if pad >= kernel:
        raise ShapeError(
            f"pad {pad} >= kernel {kernel} would create all-padding windows")
