"""A thin named wrapper over NumPy arrays in NCHW layout.

The NN graph engine passes :class:`Tensor` objects between layers so
every blob carries its name (Caffe "top"/"bottom" semantics) and shape
metadata, while the data itself stays a plain C-contiguous float32
``ndarray`` — views, never copies, wherever possible.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ShapeError
from repro.tensors.layout import BlobShape


class Tensor:
    """Named NCHW blob.

    Data is always stored float32 and C-contiguous.  Non-4D arrays
    (e.g. classifier logits) are viewed as ``(N, C, 1, 1)``.
    """

    __slots__ = ("name", "data")

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        arr = np.asarray(data, dtype=np.float32)
        if arr.ndim == 2:
            arr = arr.reshape(arr.shape[0], arr.shape[1], 1, 1)
        elif arr.ndim == 3:
            arr = arr.reshape((1,) + arr.shape)
        elif arr.ndim != 4:
            raise ShapeError(
                f"Tensor requires 2-4 dims, got ndim={arr.ndim}")
        self.data = np.ascontiguousarray(arr)
        self.name = name

    @property
    def shape(self) -> BlobShape:
        """The blob's BlobShape."""
        n, c, h, w = self.data.shape
        return BlobShape(n, c, h, w)

    @property
    def batch(self) -> int:
        """Batch dimension (N)."""
        return self.data.shape[0]

    @property
    def channels(self) -> int:
        """Channel dimension (C)."""
        return self.data.shape[1]

    @property
    def nbytes(self) -> int:
        """Storage size of the underlying array."""
        return self.data.nbytes

    def flat2d(self) -> np.ndarray:
        """View as (N, C*H*W) — the shape classifiers consume."""
        return self.data.reshape(self.data.shape[0], -1)

    def clone(self, name: Optional[str] = None) -> "Tensor":
        """Deep copy (use sparingly; prefer views)."""
        return Tensor(self.data.copy(), name if name is not None
                      else self.name)

    @staticmethod
    def zeros(shape: BlobShape | tuple[int, int, int, int],
              name: str = "") -> "Tensor":
        if isinstance(shape, BlobShape):
            shape = shape.as_tuple()
        return Tensor(np.zeros(shape, dtype=np.float32), name)

    def __repr__(self) -> str:
        return f"<Tensor {self.name!r} {self.shape}>"
