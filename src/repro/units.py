"""Unit helpers.

All simulator-internal quantities use SI base units: seconds, bytes,
hertz, watts.  These helpers exist so call sites read like the datasheet
values they encode (``600 * MHZ``, ``2 * MiB``) instead of bare powers of
ten, and so conversions to human-readable strings are centralised.
"""

from __future__ import annotations

# --- frequency -----------------------------------------------------------
KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

# --- time ----------------------------------------------------------------
US = 1e-6
MS = 1e-3
NS = 1e-9

# --- data sizes (binary) -------------------------------------------------
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

# --- data sizes / rates (decimal, as used in bus datasheets) -------------
KB = 1e3
MB = 1e6
GB = 1e9

# --- compute -------------------------------------------------------------
GFLOP = 1e9
MFLOP = 1e6


def seconds_to_ms(t: float) -> float:
    """Convert seconds to milliseconds."""
    return t / MS


def ms_to_seconds(t: float) -> float:
    """Convert milliseconds to seconds."""
    return t * MS


def cycles_to_seconds(cycles: float, freq_hz: float) -> float:
    """Wall time for *cycles* clock ticks at *freq_hz*."""
    if freq_hz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_hz}")
    return cycles / freq_hz


def seconds_to_cycles(t: float, freq_hz: float) -> float:
    """Clock ticks elapsed in *t* seconds at *freq_hz*."""
    if freq_hz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_hz}")
    return t * freq_hz


def transfer_time(nbytes: float, bandwidth_bytes_per_s: float,
                  latency_s: float = 0.0) -> float:
    """Latency-plus-bandwidth cost model for moving *nbytes* over a link."""
    if bandwidth_bytes_per_s <= 0:
        raise ValueError(
            f"bandwidth must be positive, got {bandwidth_bytes_per_s}")
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative, got {nbytes}")
    return latency_s + nbytes / bandwidth_bytes_per_s


def fmt_bytes(nbytes: float) -> str:
    """Human-readable binary size string (``'2.0 MiB'``)."""
    n = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024 or unit == "TiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    raise AssertionError("unreachable")


def fmt_time(t: float) -> str:
    """Human-readable time string with an auto-selected unit."""
    if t == 0:
        return "0 s"
    at = abs(t)
    if at >= 1:
        return f"{t:.3f} s"
    if at >= MS:
        return f"{t / MS:.3f} ms"
    if at >= US:
        return f"{t / US:.3f} us"
    return f"{t / NS:.1f} ns"


def fmt_rate(images: float, t: float) -> str:
    """Throughput string in images/second."""
    if t <= 0:
        return "inf img/s"
    return f"{images / t:.1f} img/s"
