"""Experiment scales and the shared experiment context.

An :class:`ExperimentContext` bundles everything a figure driver
needs: the pretrained network, the calibrated validation dataset, the
preprocessor and the compiled VPU graph.  Building one is expensive
(template features + noise calibration), so contexts are cached per
scale name.

Timing-only experiments (Fig. 6/8) additionally use a *paper-scale*
compiled graph — the latency models are calibrated at 224px geometry —
available via :func:`paper_timing_graph` regardless of the functional
scale in use.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Iterable, TypeVar

from repro.data.calibrate import CalibrationResult, calibrate_noise
from repro.data.generator import ImageSynthesizer
from repro.data.ilsvrc import ILSVRCValidation
from repro.data.preprocess import Preprocessor
from repro.data.synsets import SynsetVocabulary
from repro.errors import ReproError
from repro.nn.graph import Network
from repro.nn.weights import WeightStore
from repro.nn.zoo import model_entry
from repro.vpu.compiler.compile import CompiledGraph, compile_graph


@dataclass(frozen=True)
class ExperimentScale:
    """How big the functional experiments run."""

    name: str
    model: str                 #: zoo model name
    source_size: int           #: raw image side before preprocessing
    images_per_subset: int     #: evaluated per subset (paper: 10 000)
    num_subsets: int = 5
    target_error: float = 0.32
    calibration_samples: int = 256
    jitter_shift: int = 1
    seed: int = 0

    @property
    def num_classes(self) -> int:
        """Class count of the scale's zoo model."""
        return model_entry(self.model).config.num_classes

    @property
    def input_size(self) -> int:
        """Network input geometry of the scale's zoo model."""
        return model_entry(self.model).config.input_size


SCALES: dict[str, ExperimentScale] = {
    # The honest full-paper geometry. Functionally runnable but slow
    # in NumPy; benchmarks never select it by default.
    "paper": ExperimentScale(
        name="paper", model="googlenet", source_size=256,
        images_per_subset=10_000),
    # The documented default: full topology, quarter width, 64px.
    "default": ExperimentScale(
        name="default", model="googlenet-mini", source_size=96,
        images_per_subset=200),
    # Test-suite scale: milliseconds per build.
    "smoke": ExperimentScale(
        name="smoke", model="googlenet-micro", source_size=48,
        images_per_subset=20, calibration_samples=96,
        jitter_shift=0),
}


@dataclass
class ExperimentContext:
    """Everything the figure drivers consume."""

    scale: ExperimentScale
    network: Network
    vocabulary: SynsetVocabulary
    dataset: ILSVRCValidation
    preprocessor: Preprocessor
    calibration: CalibrationResult
    graph: CompiledGraph

    @property
    def num_images(self) -> int:
        """Total validation images across all subsets."""
        return self.scale.images_per_subset * self.scale.num_subsets


def build_context(scale: ExperimentScale) -> ExperimentContext:
    """Construct a context: pretrain, calibrate noise, compile."""
    from repro.nn.zoo import get_model

    net = get_model(scale.model)
    pp = Preprocessor(input_size=scale.input_size)
    synth = ImageSynthesizer(
        num_classes=scale.num_classes, size=scale.source_size,
        noise_sigma=0.0, jitter_shift=scale.jitter_shift)
    WeightStore(seed=scale.seed, logit_scale=8.0).pretrain(
        net, lambda c: pp(synth.template(c)),
        num_classes=scale.num_classes)
    calibration = calibrate_noise(
        net, synth, pp, target_error=scale.target_error,
        n_samples=scale.calibration_samples)
    calibrated = synth.with_noise(calibration.noise_sigma)
    vocab = SynsetVocabulary(num_classes=scale.num_classes)
    dataset = ILSVRCValidation(
        vocab, calibrated,
        num_images=scale.images_per_subset * scale.num_subsets,
        subset_size=scale.images_per_subset)
    graph = compile_graph(net)
    return ExperimentContext(
        scale=scale, network=net, vocabulary=vocab, dataset=dataset,
        preprocessor=pp, calibration=calibration, graph=graph)


@lru_cache(maxsize=4)
def _cached_context(scale_name: str) -> ExperimentContext:
    return build_context(SCALES[scale_name])


def get_context(scale: str = "default") -> ExperimentContext:
    """Cached experiment context for a named scale."""
    if scale not in SCALES:
        raise ReproError(
            f"unknown scale {scale!r}; available: {sorted(SCALES)}")
    return _cached_context(scale)


_T = TypeVar("_T")
_R = TypeVar("_R")


def parallel_map(func: Callable[[_T], _R], items: Iterable[_T],
                 jobs: int = 1) -> list[_R]:
    """Order-preserving map, optionally fanned across processes.

    With ``jobs <= 1`` (or a single item, or no usable ``fork`` start
    method) this is a plain serial list comprehension — the fallback
    every caller can rely on for byte-identical results.  With
    ``jobs > 1`` the items are mapped over a ``fork`` worker pool:
    children inherit the parent's caches (compiled graphs, experiment
    contexts) for free, and ``Pool.map`` preserves input order, so the
    merged output is positionally identical to the serial one.

    ``func`` must be picklable (a module-level function or a
    :func:`functools.partial` of one) and must not depend on mutable
    state that the run mutates — each item has to be independent.
    Callers are responsible for only fanning out workloads whose
    serial execution carries no state between items (e.g. jitter-free
    timing runs, per-subset functional runs on fresh frameworks).
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [func(item) for item in items]
    import multiprocessing as mp

    try:
        ctx = mp.get_context("fork")
    except ValueError:  # platform without fork: stay serial
        return [func(item) for item in items]
    with ctx.Pool(processes=min(jobs, len(items))) as pool:
        return pool.map(func, items)


@lru_cache(maxsize=1)
def paper_timing_graph() -> CompiledGraph:
    """Paper-scale compiled GoogLeNet for the timing experiments.

    Weights stay zero-initialised — only shapes matter for timing, and
    7M parameters of He-init would cost seconds for nothing.
    """
    from repro.nn.googlenet import build_googlenet

    return compile_graph(build_googlenet())


@lru_cache(maxsize=1)
def paper_timing_network() -> Network:
    """The Network behind :func:`paper_timing_graph` (shared instance)."""
    return paper_timing_graph().network
