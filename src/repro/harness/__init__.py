"""Experiment harness.

One driver per paper artefact (Fig. 6a/6b, Fig. 7a/7b, Fig. 8a/8b and
the §IV/§V headline table), each returning a structured
:class:`~repro.harness.figures.FigureResult` carrying both the measured
series and the paper's reference values, plus text-table and
ASCII-plot renderers for terminal output.

Scales: ``paper`` runs the full 224px/1000-class geometry (slow);
``default`` runs the same topology at the documented reduced scale;
``smoke`` is the test-suite scale.  Every result records which scale
produced it.
"""

from repro.harness.experiment import (
    ExperimentContext,
    ExperimentScale,
    SCALES,
    get_context,
    parallel_map,
)
from repro.harness.figures import (
    FigureResult,
    Series,
    fig6a_throughput_per_subset,
    fig6b_normalized_scaling,
    fig7a_top1_error,
    fig7b_confidence_difference,
    fig8a_throughput_per_watt,
    fig8b_projected_throughput,
    headline_table,
)
from repro.harness.tables import render_figure_table, render_comparison
from repro.harness.ascii_plot import bar_chart, line_chart

__all__ = [
    "ExperimentContext",
    "ExperimentScale",
    "SCALES",
    "get_context",
    "parallel_map",
    "FigureResult",
    "Series",
    "fig6a_throughput_per_subset",
    "fig6b_normalized_scaling",
    "fig7a_top1_error",
    "fig7b_confidence_difference",
    "fig8a_throughput_per_watt",
    "fig8b_projected_throughput",
    "headline_table",
    "render_figure_table",
    "render_comparison",
    "bar_chart",
    "line_chart",
]
