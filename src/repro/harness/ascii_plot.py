"""Terminal plots for figure results.

Keeps the benchmark output self-contained: every bench target prints
the same bars/lines the paper's figures show, without any plotting
dependency.
"""

from __future__ import annotations

from repro.harness.figures import FigureResult

_MARKS = "#*+o@%"


def bar_chart(result: FigureResult, width: int = 50) -> str:
    """Grouped horizontal bar chart of a FigureResult."""
    peak = max((max(s.y) for s in result.series if s.y), default=1.0)
    if peak <= 0:
        peak = 1.0
    lines = [f"{result.figure_id}: {result.title} "
             f"[{result.ylabel}]"]
    xs = result.series[0].x if result.series else ()
    label_w = max([len(str(x)) for x in xs] + [4])
    for i, x in enumerate(xs):
        for j, s in enumerate(result.series):
            bar = int(round(s.y[i] / peak * width))
            mark = _MARKS[j % len(_MARKS)]
            prefix = f"{str(x):>{label_w}}" if j == 0 else " " * label_w
            lines.append(
                f"{prefix} {s.label:>10} |{mark * bar:<{width}}| "
                f"{s.y[i]:.3f}")
        lines.append("")
    return "\n".join(lines).rstrip()


def line_chart(result: FigureResult, width: int = 60,
               height: int = 16) -> str:
    """Multi-series ASCII line chart (x positions evenly spaced)."""
    if not result.series:
        return f"{result.figure_id}: (no data)"
    ys = [y for s in result.series for y in s.y]
    lo, hi = min(ys), max(ys)
    if hi == lo:
        hi = lo + 1.0
    n = len(result.series[0].x)
    grid = [[" "] * width for _ in range(height)]
    for j, s in enumerate(result.series):
        mark = _MARKS[j % len(_MARKS)]
        for i, y in enumerate(s.y):
            col = int(round(i / max(n - 1, 1) * (width - 1)))
            row = int(round((1 - (y - lo) / (hi - lo)) * (height - 1)))
            grid[row][col] = mark
    lines = [f"{result.figure_id}: {result.title}"]
    lines.append(f"{hi:10.2f} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{lo:10.2f} +" + "".join(grid[-1]))
    lines.append(" " * 12 + "".join(
        str(x).ljust(width // max(len(result.series[0].x), 1))
        for x in result.series[0].x)[:width])
    legend = "   ".join(
        f"{_MARKS[j % len(_MARKS)]}={s.label}"
        for j, s in enumerate(result.series))
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
