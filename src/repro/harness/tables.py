"""Text-table rendering of figure results."""

from __future__ import annotations

from repro.harness.figures import FigureResult


def render_figure_table(result: FigureResult) -> str:
    """Render a FigureResult as an aligned text table."""
    lines = [f"{result.figure_id}: {result.title}",
             f"  scale: {result.scale}"]
    if result.notes:
        lines.append(f"  notes: {result.notes}")
    if not result.series:
        lines.append("  (no series)")
        return "\n".join(lines)

    xs = result.series[0].x
    header = f"  {'x':>10} | " + " | ".join(
        f"{s.label:>12}" for s in result.series)
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for i, x in enumerate(xs):
        cells = []
        for s in result.series:
            v = s.y[i]
            cell = f"{v:12.4f}"
            if s.yerr is not None and s.yerr[i] > 0:
                cell = f"{v:7.4f}±{s.yerr[i]:.3f}"[:12].rjust(12)
            cells.append(cell)
        lines.append(f"  {str(x):>10} | " + " | ".join(cells))
    if result.paper_reference:
        lines.append("  paper reference:")
        for key, value in result.paper_reference.items():
            lines.append(f"    {key}: {value}")
    return "\n".join(lines)


def render_figure_markdown(result: FigureResult) -> str:
    """Render a FigureResult as a GitHub-flavoured markdown section."""
    lines = [f"## {result.figure_id} — {result.title}", ""]
    if result.notes:
        lines += [f"*{result.notes}* (scale: {result.scale})", ""]
    if result.series:
        header = "| " + result.xlabel + " | " + " | ".join(
            s.label for s in result.series) + " |"
        sep = "|" + "---|" * (len(result.series) + 1)
        lines += [header, sep]
        for i, x in enumerate(result.series[0].x):
            cells = []
            for s in result.series:
                cell = f"{s.y[i]:.4g}"
                if s.yerr is not None and s.yerr[i] > 0:
                    cell += f" ± {s.yerr[i]:.2g}"
                cells.append(cell)
            lines.append(f"| {x} | " + " | ".join(cells) + " |")
        lines.append("")
    if result.paper_reference:
        lines.append("Paper reference: " + ", ".join(
            f"{k} = {v}" for k, v in result.paper_reference.items()))
        lines.append("")
    return "\n".join(lines)


def render_comparison_markdown(
        rows: list[tuple[str, float, float]],
        title: str = "Headline — paper vs measured") -> str:
    """Render a comparison table as markdown."""
    lines = [f"## {title}", "", "| metric | paper | measured | ratio |",
             "|---|---|---|---|"]
    for metric, paper, measured in rows:
        ratio = measured / paper if paper else float("inf")
        lines.append(f"| {metric} | {paper:.4g} | {measured:.4g} | "
                     f"{ratio:.3f} |")
    lines.append("")
    return "\n".join(lines)


def render_comparison(rows: list[tuple[str, float, float]],
                      title: str = "paper vs measured") -> str:
    """Render (metric, paper, measured) rows with a ratio column."""
    width = max((len(r[0]) for r in rows), default=10)
    lines = [title,
             f"  {'metric':<{width}} {'paper':>10} {'measured':>10} "
             f"{'ratio':>7}",
             "  " + "-" * (width + 30)]
    for metric, paper, measured in rows:
        ratio = measured / paper if paper else float("inf")
        lines.append(
            f"  {metric:<{width}} {paper:>10.4f} {measured:>10.4f} "
            f"{ratio:>7.3f}")
    return "\n".join(lines)
