"""Per-layer precision ablation — where does the FP16 drift come from?

Extends the paper's Fig. 7 question one level deeper: instead of
running the whole network in FP16, quantise only a *prefix* of the
layer stack and measure how the confidence drift (vs the FP32
reference) accumulates with depth.  The monotone drift curve shows
which part of GoogLeNet contributes the rounding error the paper
observes — and that no single layer dominates, which is why the end-
to-end effect stays negligible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.harness.experiment import ExperimentContext, get_context
from repro.numerics.quant import PrecisionPolicy


@dataclass(frozen=True)
class PrefixPoint:
    """Drift after quantising the first *layers_quantized* layers."""

    fraction: float
    layers_quantized: int
    mean_conf_drift: float
    top1_flips: int


def prefix_drift_curve(scale: str = "smoke",
                       fractions: tuple[float, ...] = (
                           0.0, 0.25, 0.5, 0.75, 1.0),
                       num_images: int = 64,
                       ctx: ExperimentContext | None = None
                       ) -> list[PrefixPoint]:
    """Mean |confidence - FP32 confidence| vs quantised prefix length."""
    if any(not 0.0 <= f <= 1.0 for f in fractions):
        raise ReproError("fractions must lie in [0, 1]")
    context = ctx or get_context(scale)
    net = context.network
    layer_names = [l.name for l in net.layers]

    # A fixed evaluation batch.
    records = list(context.dataset.iter_subset(0, limit=num_images))
    x = np.stack([context.preprocessor(
        context.dataset.pixels(r.image_id)) for r in records])

    ref_probs = net.forward(x, PrecisionPolicy.fp32()).reshape(
        len(records), -1)
    ref_labels = ref_probs.argmax(axis=1)
    ref_conf = ref_probs[np.arange(len(records)), ref_labels]

    points: list[PrefixPoint] = []
    for fraction in fractions:
        k = int(round(fraction * len(layer_names)))
        policy = (PrecisionPolicy.fp32() if k == 0 else
                  PrecisionPolicy.fp16_only(frozenset(layer_names[:k])))
        probs = net.forward(x, policy).reshape(len(records), -1)
        labels = probs.argmax(axis=1)
        conf = probs[np.arange(len(records)), ref_labels]
        drift = float(np.mean(np.abs(conf - ref_conf)))
        flips = int(np.sum(labels != ref_labels))
        points.append(PrefixPoint(
            fraction=fraction, layers_quantized=k,
            mean_conf_drift=drift, top1_flips=flips))
    return points


def render_drift_curve(points: list[PrefixPoint]) -> str:
    """Text table of the prefix-quantisation drift curve."""
    lines = ["per-layer precision ablation (prefix quantisation):",
             f"  {'prefix':>7} {'layers':>7} {'conf drift':>11} "
             f"{'top-1 flips':>12}"]
    for p in points:
        lines.append(f"  {p.fraction:>6.0%} {p.layers_quantized:>7d} "
                     f"{p.mean_conf_drift:>11.5f} {p.top1_flips:>12d}")
    return "\n".join(lines)
