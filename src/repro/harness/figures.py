"""Per-figure experiment drivers.

Every driver regenerates one artefact of the paper's evaluation and
returns a :class:`FigureResult` holding the measured series *and* the
paper's reference values, so the benchmark harness (and EXPERIMENTS.md)
can put them side by side.

Timing experiments (Fig. 6a/6b/8a/8b) run the paper-scale compiled
graph through the full platform simulation in non-functional mode —
the simulated clock is the measurement.  Precision experiments
(Fig. 7a/7b) run the real network functionally in both precisions at
the context's scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Optional

import numpy as np

from repro.harness.experiment import (
    ExperimentContext,
    get_context,
    paper_timing_graph,
    paper_timing_network,
    parallel_map,
)
from repro.obs.session import ObsSession
from repro.ncsw.framework import NCSw
from repro.ncsw.results import RunResult
from repro.ncsw.sources import ImageFolder, SyntheticSource
from repro.ncsw.targets import IntelCPU, IntelVPU, NvGPU
from repro.power.metrics import throughput_per_watt
from repro.power.tdp import DEFAULT_TDP

#: Images per timing measurement (timing is deterministic in the DES,
#: so a few hundred suffice to reach steady state).
TIMING_IMAGES = 160


@dataclass(frozen=True)
class Series:
    """One plotted line/bar group."""

    label: str
    x: tuple
    y: tuple
    yerr: Optional[tuple] = None


@dataclass
class FigureResult:
    """A regenerated paper artefact."""

    figure_id: str
    title: str
    xlabel: str
    ylabel: str
    series: list[Series] = field(default_factory=list)
    paper_reference: dict[str, float | tuple] = field(
        default_factory=dict)
    notes: str = ""
    scale: str = "paper-timing"

    def by_label(self, label: str) -> Series:
        """Look up a series by its label."""
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series {label!r} in {self.figure_id}")


# ---------------------------------------------------------------------------
# Timing experiments (paper-scale graph, non-functional)
# ---------------------------------------------------------------------------

def _timing_framework(num_images: int, jitter: float = 0.0,
                      obs: Optional[ObsSession] = None) -> NCSw:
    fw = NCSw(obs=obs)
    fw.add_source("synthetic", SyntheticSource(num_images))
    net = paper_timing_network()
    graph = paper_timing_graph()
    fw.add_target("cpu", IntelCPU(net, functional=False,
                                  jitter=jitter))
    fw.add_target("gpu", NvGPU(net, functional=False, jitter=jitter))
    for n in (1, 2, 4, 8):
        fw.add_target(f"vpu{n}", IntelVPU(graph=graph, num_devices=n,
                                          functional=False,
                                          jitter=jitter))
    return fw


def _timing_point(point: tuple[str, int, int]) -> tuple[float, float, float]:
    """Worker for one jitter-free ``(target, batch, images)`` timing run.

    Builds a fresh framework — every run gets a fresh simulation
    environment anyway, and with jitter disabled a run's outcome
    depends only on the (target, batch, images) triple, so fanning
    these points across processes reproduces the serial series
    exactly.  Returns ``(throughput, seconds_per_image, err)`` where
    *err* is the paper-style per-subset error-bar value.
    """
    target, batch, images = point
    fw = _timing_framework(images)
    run = fw.run("synthetic", target, batch_size=batch)
    stats = run.latency_stats()
    err = (stats.std / stats.mean * run.throughput()
           if stats.mean > 0 else 0.0)
    return run.throughput(), run.seconds_per_image(), err


def fig6a_throughput_per_subset(
        num_subsets: int = 5,
        images_per_subset: int = TIMING_IMAGES,
        jitter: float = 0.0,
        obs: Optional[ObsSession] = None,
        jobs: int = 1) -> FigureResult:
    """Fig. 6a: inference throughput per validation subset, batch 8.

    ``jitter`` enables the testbed-noise model (relative std-dev of
    per-inference latency), which reproduces the paper's error bars;
    0 keeps the simulation deterministic.  ``obs`` records a span
    timeline and metrics across the runs (see :mod:`repro.obs`).
    ``jobs > 1`` fans the independent (target, subset) runs across
    processes; only the deterministic configuration qualifies (with
    jitter the target's RNG state threads through the serial run
    order, and an ObsSession records into one in-process timeline),
    so jitter or tracing silently keeps the run serial.
    """
    fw = _timing_framework(images_per_subset, jitter=jitter, obs=obs)
    result = FigureResult(
        figure_id="fig6a",
        title="Inference performance per subset (batch 8)",
        xlabel="Validation subset",
        ylabel="Throughput (images/s)",
        paper_reference={"cpu": 44.0, "gpu": 74.2, "vpu": 77.2},
        notes=(f"{images_per_subset} timing-only images per subset; "
               + (f"testbed-noise jitter {jitter:.1%}" if jitter
                  else "deterministic timing, so subset bars are "
                  "identical (the paper's error bars reflect testbed "
                  "noise; pass jitter>0 to model it)")),
    )
    subsets = tuple(f"Set-{i + 1}" for i in range(num_subsets))
    labels = (("cpu", "cpu"), ("gpu", "gpu"), ("vpu", "vpu8"))
    if jobs > 1 and jitter == 0 and obs is None:
        points = [(target, 8, images_per_subset)
                  for _, target in labels for _ in range(num_subsets)]
        measured = parallel_map(_timing_point, points, jobs=jobs)
        for i, (label, _) in enumerate(labels):
            chunk = measured[i * num_subsets:(i + 1) * num_subsets]
            result.series.append(Series(
                label=label, x=subsets,
                y=tuple(tput for tput, _, _ in chunk),
                yerr=tuple(err for _, _, err in chunk)))
        return result
    for label, target in labels:
        values = []
        errs = []
        for _ in range(num_subsets):
            run = fw.run("synthetic", target, batch_size=8)
            values.append(run.throughput())
            stats = run.latency_stats()
            # Std of per-image throughput contribution within the
            # subset, matching the paper's per-subset error bars.
            errs.append(stats.std / stats.mean * run.throughput()
                        if stats.mean > 0 else 0.0)
        result.series.append(Series(
            label=label, x=subsets, y=tuple(values),
            yerr=tuple(errs)))
    return result


def fig6b_normalized_scaling(
        images: int = TIMING_IMAGES,
        obs: Optional[ObsSession] = None,
        jobs: int = 1) -> FigureResult:
    """Fig. 6b: performance scaling vs batch size, normalised to the
    single-input test of each device (VPU count == batch size).
    ``jobs > 1`` fans the (device, batch) grid across processes."""
    fw = _timing_framework(images, obs=obs)
    batches = (1, 2, 4, 8)
    result = FigureResult(
        figure_id="fig6b",
        title="Normalized performance scaling per batch size",
        xlabel="Batch input size",
        ylabel="Normalized performance",
        paper_reference={
            "cpu": (1.0, 1.04, 1.08, 1.15),   # ~14.7% total gain
            "gpu": (1.0, 1.3, 1.6, 1.9),      # 92.5% at batch 8
            "vpu": (1.0, 2.0, 4.0, 7.8),      # near-ideal, small penalty
            "vpu_batch8_factor": 7.8,
        },
        notes="per-image time at batch 1 divided by per-image time at "
              "batch b; VPU uses b active sticks",
    )
    labels = ("cpu", "gpu", "vpu")
    if jobs > 1 and obs is None:
        points = [(f"vpu{b}" if label == "vpu" else label, b, images)
                  for label in labels for b in batches]
        measured = parallel_map(_timing_point, points, jobs=jobs)
        for i, label in enumerate(labels):
            chunk = measured[i * len(batches):(i + 1) * len(batches)]
            per_image = [spi for _, spi, _ in chunk]
            result.series.append(Series(
                label=label, x=batches,
                y=tuple(per_image[0] / t for t in per_image)))
        return result
    for label in labels:
        per_image = []
        for b in batches:
            target = f"vpu{b}" if label == "vpu" else label
            run = fw.run("synthetic", target, batch_size=b)
            per_image.append(run.seconds_per_image())
        base = per_image[0]
        result.series.append(Series(
            label=label, x=batches,
            y=tuple(base / t for t in per_image)))
    return result


def fig8a_throughput_per_watt(
        images: int = TIMING_IMAGES,
        obs: Optional[ObsSession] = None,
        jobs: int = 1) -> FigureResult:
    """Fig. 8a: throughput per Watt (Eq. 1) vs batch size.
    ``jobs > 1`` fans the (device, batch) grid across processes."""
    fw = _timing_framework(images, obs=obs)
    batches = (1, 2, 4, 8)
    result = FigureResult(
        figure_id="fig8a",
        title="Throughput-TDP comparison per batch size",
        xlabel="Batch input size",
        ylabel="Throughput (images/W)",
        paper_reference={"cpu": 0.55, "gpu": 0.93,
                         "vpu_single": 3.97},
        notes="TDP figures: CPU 80 W, GPU 80 W, NCS stick 2.5 W each "
              "(the paper's §V assumption)",
    )
    labels = ("cpu", "gpu", "vpu")
    if jobs > 1 and obs is None:
        points = [(f"vpu{b}" if label == "vpu" else label, b, images)
                  for label in labels for b in batches]
        measured = parallel_map(_timing_point, points, jobs=jobs)
        for i, label in enumerate(labels):
            chunk = measured[i * len(batches):(i + 1) * len(batches)]
            values = [
                throughput_per_watt(
                    tput, (DEFAULT_TDP.watts("ncs", b)
                           if label == "vpu" else DEFAULT_TDP.watts(label)))
                for b, (tput, _, _) in zip(batches, chunk)]
            result.series.append(Series(label=label, x=batches,
                                        y=tuple(values)))
        return result
    for label in labels:
        values = []
        for b in batches:
            target = f"vpu{b}" if label == "vpu" else label
            run = fw.run("synthetic", target, batch_size=b)
            watts = (DEFAULT_TDP.watts("ncs", b) if label == "vpu"
                     else DEFAULT_TDP.watts(label))
            values.append(throughput_per_watt(run.throughput(), watts))
        result.series.append(Series(label=label, x=batches,
                                    y=tuple(values)))
    return result


def fig8b_projected_throughput(
        images: int = TIMING_IMAGES,
        obs: Optional[ObsSession] = None,
        jobs: int = 1) -> FigureResult:
    """Fig. 8b: throughput vs batch size up to 16, with the multi-VPU
    series projected past the 8 sticks the testbed holds.
    ``jobs > 1`` fans the measured (device, batch) runs across
    processes; the batch-16 projection is derived afterwards."""
    fw = _timing_framework(images, obs=obs)
    batches = (1, 2, 4, 8, 16)
    result = FigureResult(
        figure_id="fig8b",
        title="Projected inference performance per batch size",
        xlabel="Batch input size",
        ylabel="Throughput (images/s)",
        paper_reference={"cpu_max": 44.5, "gpu_max": 79.9,
                         "vpu_projected_16": 153.0},
        notes="VPU values at batch > 8 are projected by continuing the "
              "measured 4->8 scaling efficiency (dashed in the paper)",
    )
    if jobs > 1 and obs is None:
        points = ([(label, b, images)
                   for label in ("cpu", "gpu") for b in batches]
                  + [(f"vpu{b}", b, images) for b in (1, 2, 4, 8)])
        measured = parallel_map(_timing_point, points, jobs=jobs)
        for i, label in enumerate(("cpu", "gpu")):
            chunk = measured[i * len(batches):(i + 1) * len(batches)]
            result.series.append(Series(
                label=label, x=batches,
                y=tuple(tput for tput, _, _ in chunk)))
        vpu_measured = {
            b: measured[2 * len(batches) + i][0]
            for i, b in enumerate((1, 2, 4, 8))}
    else:
        for label in ("cpu", "gpu"):
            values = [fw.run("synthetic", label,
                             batch_size=b).throughput()
                      for b in batches]
            result.series.append(Series(label=label, x=batches,
                                        y=tuple(values)))

        vpu_measured = {
            b: fw.run("synthetic", f"vpu{b}",
                      batch_size=b).throughput()
            for b in (1, 2, 4, 8)}
    # Efficiency of each doubling step, measured at 4 -> 8 sticks.
    step_eff = vpu_measured[8] / (2 * vpu_measured[4])
    projected_16 = vpu_measured[8] * 2 * step_eff
    result.series.append(Series(
        label="vpu",
        x=batches,
        y=tuple([vpu_measured[1], vpu_measured[2], vpu_measured[4],
                 vpu_measured[8], projected_16])))
    result.notes += (f"; measured step efficiency {step_eff:.3f}")
    return result


# ---------------------------------------------------------------------------
# Precision experiments (functional, both precisions)
# ---------------------------------------------------------------------------

def _precision_runs(ctx: ExperimentContext, subset: int,
                    vpu_devices: int = 8,
                    obs: Optional[ObsSession] = None
                    ) -> tuple[RunResult, RunResult, RunResult]:
    """Run one subset through CPU (FP32), GPU (FP32) and VPU (FP16)."""
    fw = NCSw(obs=obs)
    fw.add_source("val", ImageFolder(
        ctx.dataset, subset, ctx.preprocessor,
        limit=ctx.scale.images_per_subset))
    fw.add_target("cpu", IntelCPU(ctx.network, functional=True))
    fw.add_target("gpu", NvGPU(ctx.network, functional=True))
    fw.add_target("vpu", IntelVPU(
        graph=ctx.graph, num_devices=vpu_devices, functional=True))
    cpu = fw.run("val", "cpu", batch_size=8)
    gpu = fw.run("val", "gpu", batch_size=8)
    vpu = fw.run("val", "vpu", batch_size=8)
    return cpu, gpu, vpu


def _precision_point(scale: str, subset: int,
                     obs: Optional[ObsSession] = None
                     ) -> tuple[float, float, float, float, float]:
    """Worker for one functional subset in both precisions.

    Returns ``(cpu_err, gpu_err, vpu_err, conf_diff_mean,
    conf_diff_std)`` — everything Fig. 7a and 7b need from the
    subset, as plain floats, so the campaign can fan subsets across
    processes (each call builds its own framework and targets; the
    cached :func:`get_context` is inherited by forked workers).
    """
    ctx = get_context(scale)
    cpu, gpu, vpu = _precision_runs(ctx, subset, obs=obs)
    cpu_by_id = {r.image_id: r for r in cpu.records}
    pair_diffs = []
    for rv in vpu.records:
        rc = cpu_by_id.get(rv.image_id)
        if (rc is None or not rc.correct or not rv.correct
                or rc.confidence is None or rv.confidence is None):
            continue
        pair_diffs.append(abs(rc.confidence - rv.confidence))
    arr = np.array(pair_diffs) if pair_diffs else np.zeros(1)
    return (cpu.top1_error(), gpu.top1_error(), vpu.top1_error(),
            float(arr.mean()), float(arr.std()))


def fig7a_top1_error(scale: str = "default",
                     num_subsets: Optional[int] = None,
                     obs: Optional[ObsSession] = None,
                     jobs: int = 1) -> FigureResult:
    """Fig. 7a: top-1 inference error per subset, FP32 vs FP16.
    ``jobs > 1`` fans the independent subsets across processes
    (tracing via ``obs`` keeps the run serial)."""
    ctx = get_context(scale)
    n = num_subsets or ctx.scale.num_subsets
    result = FigureResult(
        figure_id="fig7a",
        title="Top-1 inference error per subset",
        xlabel="Validation subset",
        ylabel="Inference error",
        paper_reference={"cpu_fp32_mean": 0.3201,
                         "vpu_fp16_mean": 0.3192,
                         "abs_delta": 0.0009},
        notes="functional runs of the same network in both precisions",
        scale=scale,
    )
    subsets = tuple(f"Set-{i + 1}" for i in range(n))
    if jobs > 1 and obs is None:
        points = parallel_map(partial(_precision_point, scale),
                              range(n), jobs=jobs)
    else:
        points = [_precision_point(scale, s, obs=obs)
                  for s in range(n)]
    cpu_err = [p[0] for p in points]
    gpu_err = [p[1] for p in points]
    vpu_err = [p[2] for p in points]
    result.series.append(Series("cpu_fp32", subsets, tuple(cpu_err)))
    result.series.append(Series("vpu_fp16", subsets, tuple(vpu_err)))
    # The paper omits the GPU from the figure but asserts equivalence
    # in a footnote; we include it.
    result.series.append(Series("gpu_fp32", subsets, tuple(gpu_err)))
    return result


def fig7b_confidence_difference(
        scale: str = "default",
        num_subsets: Optional[int] = None,
        obs: Optional[ObsSession] = None,
        jobs: int = 1) -> FigureResult:
    """Fig. 7b: mean |confidence_FP32 - confidence_FP16| per subset,
    over images both precisions classify correctly.  ``jobs > 1``
    fans the independent subsets across processes."""
    ctx = get_context(scale)
    n = num_subsets or ctx.scale.num_subsets
    result = FigureResult(
        figure_id="fig7b",
        title="Absolute confidence difference per subset",
        xlabel="Validation subset",
        ylabel="Abs. difference error",
        paper_reference={"mean": 0.0044},
        notes="filtered to images whose top-1 prediction is correct "
              "in both precisions, as the paper does",
        scale=scale,
    )
    subsets = tuple(f"Set-{i + 1}" for i in range(n))
    if jobs > 1 and obs is None:
        points = parallel_map(partial(_precision_point, scale),
                              range(n), jobs=jobs)
    else:
        points = [_precision_point(scale, s, obs=obs)
                  for s in range(n)]
    diffs = [p[3] for p in points]
    stds = [p[4] for p in points]
    result.series.append(Series("cpu_vs_vpu", subsets, tuple(diffs),
                                yerr=tuple(stds)))
    return result


# ---------------------------------------------------------------------------
# Headline table (§IV / §V numbers)
# ---------------------------------------------------------------------------

def headline_table(images: int = TIMING_IMAGES,
                   error_scale: Optional[str] = "default",
                   obs: Optional[ObsSession] = None,
                   jobs: int = 1
                   ) -> list[tuple[str, float, float]]:
    """The paper's headline numbers: (metric, paper value, measured).

    ``error_scale=None`` skips the functional error rows (used by the
    timing-only benchmark).  ``jobs`` fans the functional Fig. 7
    subsets across processes; the timing rows stay serial (they are
    six short runs on one framework).
    """
    fw = _timing_framework(images, obs=obs)
    rows: list[tuple[str, float, float]] = []

    cpu1 = fw.run("synthetic", "cpu", batch_size=1)
    gpu1 = fw.run("synthetic", "gpu", batch_size=1)
    vpu1 = fw.run("synthetic", "vpu1", batch_size=1)
    rows.append(("cpu_single_ms", 26.0,
                 cpu1.seconds_per_image() * 1000))
    rows.append(("gpu_single_ms", 25.9,
                 gpu1.seconds_per_image() * 1000))
    rows.append(("vpu_single_ms", 100.7,
                 vpu1.seconds_per_image() * 1000))

    cpu8 = fw.run("synthetic", "cpu", batch_size=8)
    gpu8 = fw.run("synthetic", "gpu", batch_size=8)
    vpu8 = fw.run("synthetic", "vpu8", batch_size=8)
    rows.append(("cpu_batch8_img_s", 44.0, cpu8.throughput()))
    rows.append(("gpu_batch8_img_s", 74.2, gpu8.throughput()))
    rows.append(("vpu_batch8_img_s", 77.2, vpu8.throughput()))
    # "The optimized Caffe framework on the CPU is 40.7% slower."
    rows.append(("cpu_vs_vpu_slowdown_pct", 40.7,
                 100 * (vpu8.throughput() - cpu8.throughput())
                 / vpu8.throughput()))
    # Single-chip inference is ~4x slower than CPU/GPU (§V).
    rows.append(("vpu_single_vs_cpu_factor", 4.0,
                 vpu1.seconds_per_image() / cpu1.seconds_per_image()))
    # TDP reduction: 80 W CPU vs 8 Myriad 2 chips (§V, abstract).
    rows.append(("tdp_reduction_chips", 11.1,
                 80.0 / DEFAULT_TDP.watts("vpu_chip", 8)))
    rows.append(("tdp_reduction_sticks", 4.0,
                 80.0 / DEFAULT_TDP.watts("ncs", 8)))
    # Throughput per Watt at single-device (Fig. 8a text).
    rows.append(("vpu_img_per_watt", 3.97,
                 throughput_per_watt(vpu1.throughput(),
                                     DEFAULT_TDP.watts("ncs"))))
    rows.append(("cpu_img_per_watt", 0.55,
                 throughput_per_watt(cpu8.throughput(), 80.0)))
    rows.append(("gpu_img_per_watt", 0.93,
                 throughput_per_watt(gpu8.throughput(), 80.0)))

    if error_scale is not None:
        fig7a = fig7a_top1_error(scale=error_scale, obs=obs,
                                 jobs=jobs)
        cpu_mean = float(np.mean(fig7a.by_label("cpu_fp32").y))
        vpu_mean = float(np.mean(fig7a.by_label("vpu_fp16").y))
        rows.append(("cpu_top1_error", 0.3201, cpu_mean))
        rows.append(("vpu_top1_error", 0.3192, vpu_mean))
        fig7b = fig7b_confidence_difference(scale=error_scale,
                                            obs=obs, jobs=jobs)
        rows.append(("confidence_diff", 0.0044,
                     float(np.mean(fig7b.series[0].y))))
    return rows
