"""Wall-clock performance harness for the repository's hot paths.

Unlike the figure drivers — which measure *simulated* time — this
module measures *host* wall-clock over three canonical workloads:

* ``sim_events_per_sec`` — a pure DES producer/consumer/resource
  workload on :mod:`repro.sim` (the kernel under every experiment).
* ``sim_wheel_events_per_sec`` — a serve-shaped workload (a deep
  pending set of jittered deadlines plus same-instant completion
  chains) timed on **both** scheduler kernels; the headline is the
  event-wheel rate and the detail records the heap baseline and the
  matched-workload speedup.
* ``googlenet_fp32_img_s`` / ``googlenet_fp16_img_s`` — functional
  GoogLeNet-mini forward passes at batch 8 in both precision
  policies (the numerics under every functional experiment).
* ``serve_req_per_sec`` — one end-to-end open-loop serving run
  (workload synthesis, admission, batching, routing, multi-VPU
  simulation), i.e. the ``serve-run`` smoke path.
* ``fluid_day_s`` — a million-user diurnal autoscale day under the
  hybrid fluid model (:mod:`repro.sim.fluid`).  The value is a rate
  (simulated days per wall second, higher = better) so the
  regression gate treats it like every other workload; the detail
  records the raw wall seconds.

``python -m repro perf-run`` times the suite and can write / check
``BENCH_PR9.json`` at the repository root:

* ``--out FILE`` writes the measured numbers (optionally folding in a
  previously recorded ``--baseline FILE`` so the file carries
  before/after numbers and speedups).
* ``--check FILE`` compares the current machine against the committed
  numbers and exits non-zero on a wall-clock regression beyond
  ``--tolerance`` (the CI perf gate).

Every sample records a *host calibration* score — a fixed pure-Python
spin loop — so checks on a machine slower or faster than the one that
recorded the file rescale the committed numbers instead of comparing
raw wall-clock across different silicon.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Optional

#: Schema version of BENCH_*.json files.
BENCH_SCHEMA = 1

#: Default benchmark artefact at the repository root.
BENCH_FILENAME = "BENCH_PR9.json"


@dataclass
class BenchSample:
    """One timed workload. ``value`` is always a rate (higher=better)."""

    name: str
    metric: str            #: unit of ``value``, e.g. ``img/s``
    value: float           #: best-of-``repeats`` rate
    wall_seconds: float    #: wall time of the best repeat
    repeats: int
    detail: dict = field(default_factory=dict)


def calibrate_host(ops: int = 300_000) -> float:
    """Machine-speed score: pure-Python ops/sec of a fixed spin loop.

    Used to rescale recorded baselines when the checking machine is
    not the recording machine.  The loop exercises the interpreter
    operations the DES kernel leans on (attribute access, integer
    arithmetic, method calls) rather than NumPy throughput.
    """
    class _Cell:
        __slots__ = ("v",)

        def __init__(self) -> None:
            self.v = 0

    cell = _Cell()
    items: list[int] = []
    t0 = time.perf_counter()
    for i in range(ops):
        cell.v = cell.v + i
        if not i & 1023:
            items.append(i)
    dt = time.perf_counter() - t0
    # Fold the list back in so the loop cannot be optimised away.
    cell.v += len(items)
    return ops / dt


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------

def _sim_workload(n_items: int, n_workers: int = 4) -> int:
    """Producer/consumer/resource pipeline; returns events scheduled."""
    from repro.sim.core import Environment
    from repro.sim.resources import Resource, Store

    env = Environment()
    store = Store(env, capacity=32)
    done = Store(env)
    cpu = Resource(env, capacity=2)

    def producer():
        for i in range(n_items):
            yield store.put(i)
            yield env.timeout(0.001)

    def worker():
        while True:
            item = yield store.get()
            with cpu.request() as req:
                yield req
                yield env.timeout(0.01)
            yield done.put(item)

    def drain():
        for _ in range(n_items):
            yield done.get()

    env.process(producer())
    for _ in range(n_workers):
        env.process(worker())
    env.run(until=env.process(drain()))
    return env._seq


def _serve_shape_workload(sessions: int, cycles: int,
                          scheduler: str) -> int:
    """Serve-shaped kernel stress: a deep pending set of jittered
    deadline timers with same-instant completion chains.

    This is the million-user regime the event wheel targets — every
    concurrent session holds a far-out deadline (so the pending set
    is ``sessions`` deep) while completions hop through now-events.
    A binary heap pays ``log(sessions)`` per operation here, now-
    events included; the wheel's now-deques and cursor bucket do not.
    Returns events scheduled (``env._seq``), identical across kernels
    by the determinism contract.
    """
    from repro.sim.core import Environment

    env = Environment(scheduler=scheduler)

    def hop(ev):
        yield ev

    def session(state: int):
        for _ in range(cycles):
            state = (state * 1103515245 + 12345) & 0x7FFFFFFF
            # Deadline-style timer: far out relative to the chains
            # below, jittered so sessions interleave.
            yield env.timeout(0.05 + (state / 0x7FFFFFFF) * 0.1)
            # Completion chase: a few same-instant event hops.
            for _ in range(3):
                ev = env.event()
                env.process(hop(ev))
                ev.succeed()
                yield env.timeout(0.0)

    for i in range(sessions):
        env.process(session((i * 2654435761) & 0x7FFFFFFF))
    env.run()
    return env._seq


def _best_of(fn: Callable[[], tuple[float, dict]], repeats: int
             ) -> tuple[float, float, dict]:
    """Run ``fn`` ``repeats`` times; return (best rate, wall, detail)."""
    best_rate, best_wall, best_detail = 0.0, float("inf"), {}
    for _ in range(repeats):
        t0 = time.perf_counter()
        units, detail = fn()
        wall = time.perf_counter() - t0
        rate = units / wall if wall > 0 else float("inf")
        if rate > best_rate:
            best_rate, best_wall, best_detail = rate, wall, detail
    return best_rate, best_wall, best_detail


def bench_sim(n_items: int = 3000, repeats: int = 3) -> BenchSample:
    """Events/sec of the canonical DES workload."""
    _sim_workload(200)  # warm the kernel code paths

    def once() -> tuple[float, dict]:
        events = _sim_workload(n_items)
        return float(events), {"events": events, "items": n_items}

    rate, wall, detail = _best_of(once, repeats)
    return BenchSample("sim_events_per_sec", "events/s", rate, wall,
                       repeats, detail)


def bench_sim_wheel(sessions: int = 20000, cycles: int = 4,
                    repeats: int = 3) -> BenchSample:
    """Events/sec of the serve-shaped workload on the event wheel.

    The same workload is timed on both kernels (interleaved, best of
    ``repeats`` each) so the recorded speedup is a matched-workload
    comparison, not a cross-workload one.  Fire order is identical by
    the determinism contract; only the wall clock differs.
    """
    _serve_shape_workload(512, 2, "wheel")   # warm both kernels
    _serve_shape_workload(512, 2, "heap")

    best = {"wheel": 0.0, "heap": 0.0}
    wall = {"wheel": float("inf"), "heap": float("inf")}
    events = 0
    for _ in range(repeats):
        for kernel in ("wheel", "heap"):
            t0 = time.perf_counter()
            events = _serve_shape_workload(sessions, cycles, kernel)
            dt = time.perf_counter() - t0
            rate = events / dt if dt > 0 else float("inf")
            if rate > best[kernel]:
                best[kernel], wall[kernel] = rate, dt
    return BenchSample(
        "sim_wheel_events_per_sec", "events/s", best["wheel"],
        wall["wheel"], repeats,
        {"scheduler": "wheel", "sessions": sessions, "cycles": cycles,
         "events": events,
         "heap_events_per_sec": best["heap"],
         "speedup_vs_heap": (best["wheel"] / best["heap"]
                             if best["heap"] > 0 else float("inf"))})


def bench_fluid(requests: int = 1_000_000,
                repeats: int = 3) -> BenchSample:
    """Simulated diurnal days per wall second of the hybrid model.

    One million requests over a diurnal cycle with the reactive
    autoscaler — the campaign shape ``autoscale-sweep --fluid``
    runs.  Rates are synthetic (no device calibration) so the bench
    is hermetic; the detail records the raw day wall seconds.
    """
    from repro.cluster.autoscale import Autoscaler, ReactivePolicy
    from repro.serve.workload import DiurnalWorkload
    from repro.sim.fluid import FluidCluster

    def day() -> "FluidCluster":
        return FluidCluster(
            DiurnalWorkload(peak_rate=180000.0, period_s=10.0,
                            floor_frac=0.1, seed=7),
            host_rate=30000.0, pool=8,
            autoscaler=Autoscaler(
                ReactivePolicy(high_water=2.0, low_water=0.5),
                min_hosts=2, max_hosts=8, interval_s=0.02,
                cooldown_s=0.05, warm_pool=2),
            slo_seconds=0.250, service_floor_s=8 / 30000.0, seed=7)

    result = day().run(max(1000, requests // 10))  # warm

    def once() -> tuple[float, dict]:
        result = day().run(requests)
        return 1.0, {
            "requests": requests,
            "day_wall_s": result.elapsed_s,
            "fluid_windows": result.fluid_windows,
            "des_windows": result.des_windows,
            "slo_attainment": result.slo_attainment}

    rate, wall, detail = _best_of(once, repeats)
    return BenchSample("fluid_day_s", "day/s", rate, wall, repeats,
                       detail)


def bench_forward(precision: str = "fp32", batch: int = 8,
                  model: str = "googlenet-mini", forwards: int = 12,
                  repeats: int = 3) -> BenchSample:
    """Images/sec of functional GoogLeNet forward passes."""
    import numpy as np

    from repro.nn.weights import initialize_network
    from repro.nn.zoo import get_model
    from repro.numerics.quant import PrecisionPolicy

    net = get_model(model)
    initialize_network(net)
    s = net.input_shape
    x = np.random.RandomState(0).rand(
        batch, s.c, s.h, s.w).astype(np.float32)
    policy = (PrecisionPolicy.fp16() if precision == "fp16"
              else PrecisionPolicy.fp32())
    net.forward(x, policy)  # warm caches (indices, quantised weights)

    def once() -> tuple[float, dict]:
        for _ in range(forwards):
            net.forward(x, policy)
        return float(forwards * batch), {
            "model": model, "batch": batch, "forwards": forwards,
            "precision": precision}

    rate, wall, detail = _best_of(once, repeats)
    return BenchSample(f"googlenet_{precision}_img_s", "img/s", rate,
                       wall, repeats, detail)


def bench_serve(requests: int = 80, rate: float = 60.0,
                devices: int = 2, repeats: int = 2) -> BenchSample:
    """Host-side requests/sec of one end-to-end serving smoke run."""
    from repro.harness.experiment import paper_timing_graph
    from repro.ncsw.targets import IntelVPU
    from repro.serve import InferenceServer, PoissonWorkload

    graph = paper_timing_graph()  # compile outside the timed region

    def once() -> tuple[float, dict]:
        server = InferenceServer()
        server.add_target("vpu", IntelVPU(
            graph=graph, num_devices=devices, functional=False))
        result = server.run(PoissonWorkload(rate=rate, seed=7),
                            requests)
        return float(requests), {
            "requests": requests, "rate": rate, "devices": devices,
            "completed": result.completed}

    once()  # warm
    rate_out, wall, detail = _best_of(once, repeats)
    return BenchSample("serve_req_per_sec", "req/s", rate_out, wall,
                       repeats, detail)


#: Workload sizes per mode.  ``smoke`` keeps CI under a minute; both
#: modes measure rates, so their numbers are directly comparable.
_MODES: dict[str, dict[str, int]] = {
    "full": {"sim_items": 4000, "forwards": 12, "requests": 80,
             "wheel_sessions": 20000, "wheel_cycles": 4,
             "fluid_requests": 1_000_000},
    "smoke": {"sim_items": 1200, "forwards": 4, "requests": 32,
              "wheel_sessions": 4000, "wheel_cycles": 2,
              "fluid_requests": 200_000},
}


def run_suite(mode: str = "full") -> dict[str, BenchSample]:
    """Time every canonical workload; returns name -> sample."""
    if mode not in _MODES:
        raise ValueError(f"unknown perf mode {mode!r}; "
                         f"expected one of {sorted(_MODES)}")
    size = _MODES[mode]
    samples = [
        bench_sim(n_items=size["sim_items"]),
        bench_sim_wheel(sessions=size["wheel_sessions"],
                        cycles=size["wheel_cycles"]),
        bench_forward("fp32", forwards=size["forwards"]),
        bench_forward("fp16", forwards=size["forwards"]),
        bench_serve(requests=size["requests"]),
        bench_fluid(requests=size["fluid_requests"]),
    ]
    return {s.name: s for s in samples}


# ---------------------------------------------------------------------------
# BENCH_*.json I/O and the regression gate
# ---------------------------------------------------------------------------

def suite_to_dict(samples: dict[str, BenchSample]) -> dict:
    """JSON-serialisable form of a measured suite."""
    return {name: asdict(s) for name, s in samples.items()}


def write_bench(path: str | Path,
                modes: dict[str, dict[str, BenchSample]],
                baseline: Optional[dict] = None) -> Path:
    """Write a BENCH file.

    ``modes`` maps mode name -> samples; ``baseline`` is a previously
    written BENCH document (the pre-optimisation numbers) whose
    workloads are embedded so the file carries before/after numbers
    and per-workload speedups.
    """
    doc: dict = {
        "schema": BENCH_SCHEMA,
        "calibration_ops_per_sec": calibrate_host(),
        "modes": {m: suite_to_dict(s) for m, s in modes.items()},
    }
    if baseline is not None:
        doc["baseline"] = {
            "calibration_ops_per_sec":
                baseline.get("calibration_ops_per_sec"),
            "modes": baseline.get("modes", {}),
        }
        speedup: dict[str, float] = {}
        base_full = baseline.get("modes", {}).get("full", {})
        for name, sample in doc["modes"].get("full", {}).items():
            base = base_full.get(name)
            if base and base.get("value"):
                speedup[name] = sample["value"] / base["value"]
        doc["speedup_vs_baseline"] = speedup
    out = Path(path)
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return out


def load_bench(path: str | Path) -> dict:
    """Read and schema-check a BENCH document."""
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: unsupported BENCH schema {doc.get('schema')!r}")
    return doc


def check_regression(current: dict[str, BenchSample], committed: dict,
                     mode: str = "smoke",
                     tolerance: float = 0.25) -> list[str]:
    """Compare a fresh run against a committed BENCH document.

    Returns human-readable failure strings for every workload whose
    current rate falls more than ``tolerance`` below the committed
    rate after rescaling for machine speed; empty list means pass.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    committed_modes = committed.get("modes", {})
    if mode not in committed_modes:
        raise ValueError(
            f"committed BENCH file has no {mode!r} mode "
            f"(has {sorted(committed_modes)})")
    ref_calib = committed.get("calibration_ops_per_sec") or 0.0
    now_calib = calibrate_host()
    scale = (now_calib / ref_calib) if ref_calib > 0 else 1.0
    failures = []
    for name, ref in committed_modes[mode].items():
        sample = current.get(name)
        if sample is None:
            failures.append(f"{name}: missing from current run")
            continue
        expected = ref["value"] * scale
        floor = expected * (1.0 - tolerance)
        if sample.value < floor:
            failures.append(
                f"{name}: {sample.value:.1f} {sample.metric} < "
                f"{floor:.1f} (committed {ref['value']:.1f} x "
                f"machine-speed {scale:.2f} - {tolerance:.0%})")
    return failures


def render_perf_table(samples: dict[str, BenchSample],
                      baseline_modes: Optional[dict] = None,
                      mode: str = "full") -> str:
    """Terminal table of the measured rates (and speedups if known)."""
    base = (baseline_modes or {}).get(mode, {})
    lines = [f"perf suite ({mode})",
             f"{'workload':<26}{'rate':>14}  {'unit':<10}{'speedup':>8}"]
    for name, s in samples.items():
        ref = base.get(name)
        speed = (f"{s.value / ref['value']:.2f}x"
                 if ref and ref.get("value") else "-")
        lines.append(
            f"{name:<26}{s.value:>14.1f}  {s.metric:<10}{speed:>8}")
    return "\n".join(lines)
