"""JSON export of experiment results.

Every figure result serialises to plain JSON so EXPERIMENTS.md (or any
downstream analysis) can be regenerated from archived runs instead of
re-simulating.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.harness.figures import FigureResult, Series


def figure_to_dict(result: FigureResult) -> dict[str, Any]:
    """Plain-dict form of a FigureResult (JSON-safe)."""
    return {
        "figure_id": result.figure_id,
        "title": result.title,
        "xlabel": result.xlabel,
        "ylabel": result.ylabel,
        "scale": result.scale,
        "notes": result.notes,
        "paper_reference": {
            k: (list(v) if isinstance(v, (tuple, list)) else v)
            for k, v in result.paper_reference.items()},
        "series": [
            {"label": s.label,
             "x": list(s.x),
             "y": [float(v) for v in s.y],
             "yerr": ([float(v) for v in s.yerr]
                      if s.yerr is not None else None)}
            for s in result.series],
    }


def figure_from_dict(data: dict[str, Any]) -> FigureResult:
    """Rebuild a FigureResult from :func:`figure_to_dict` output."""
    try:
        result = FigureResult(
            figure_id=data["figure_id"],
            title=data["title"],
            xlabel=data["xlabel"],
            ylabel=data["ylabel"],
            scale=data.get("scale", "paper-timing"),
            notes=data.get("notes", ""),
            paper_reference={
                k: (tuple(v) if isinstance(v, list) else v)
                for k, v in data.get("paper_reference", {}).items()},
        )
        for s in data["series"]:
            result.series.append(Series(
                label=s["label"],
                x=tuple(s["x"]),
                y=tuple(s["y"]),
                yerr=tuple(s["yerr"]) if s.get("yerr") else None))
    except KeyError as exc:
        raise ReproError(f"malformed figure JSON: missing {exc}") from exc
    return result


def save_figure_json(result: FigureResult, path: str | Path) -> None:
    """Write a figure result to a JSON file."""
    Path(path).write_text(
        json.dumps(figure_to_dict(result), indent=2) + "\n")


def load_figure_json(path: str | Path) -> FigureResult:
    """Read a figure result written by :func:`save_figure_json`."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ReproError(f"corrupt figure JSON {path}: {exc}") from exc
    return figure_from_dict(data)


def comparison_to_dict(rows: list[tuple[str, float, float]]
                       ) -> list[dict[str, float | str]]:
    """JSON-safe form of a (metric, paper, measured) table."""
    return [{"metric": m, "paper": float(p), "measured": float(v),
             "ratio": float(v / p) if p else None}
            for m, p, v in rows]


def save_trace_json(session: Any, path: str | Path) -> Path:
    """Write an observability session as Chrome/Perfetto trace JSON.

    Thin harness-level wrapper over
    :func:`repro.obs.perfetto.write_chrome_trace` so experiment
    drivers and the CLI only import :mod:`repro.obs` when tracing is
    actually requested.
    """
    from repro.obs.perfetto import write_chrome_trace

    return write_chrome_trace(session, path)
