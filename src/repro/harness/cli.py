"""Command-line interface: regenerate any paper artefact from a shell.

::

    python -m repro list
    python -m repro fig6a --images 160 --trace /tmp/fig6a.json
    python -m repro fig7a --scale default
    python -m repro headline
    python -m repro report --scale smoke     # everything
    python -m repro profile --model googlenet-mini
    python -m repro profile-run --target vpu8 --trace /tmp/run.json
    python -m repro chaos-run --devices 8 --kill-at 0.5 --kind death

``--trace out.json`` on any experiment records a span timeline into
a Chrome/Perfetto ``trace_event`` file (open at
https://ui.perfetto.dev) and prints the per-device utilisation
report; ``profile-run`` does one instrumented run and reports even
without ``--trace``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.harness import figures
from repro.harness.ascii_plot import bar_chart, line_chart
from repro.harness.tables import render_comparison, render_figure_table

_FIGURES: dict[str, tuple[str, Callable]] = {
    "fig6a": ("throughput per subset (batch 8)",
              lambda args, obs=None: figures.fig6a_throughput_per_subset(
                  images_per_subset=args.images, obs=obs,
                  jobs=args.jobs)),
    "fig6b": ("normalized scaling vs batch size",
              lambda args, obs=None: figures.fig6b_normalized_scaling(
                  images=args.images, obs=obs, jobs=args.jobs)),
    "fig7a": ("top-1 error per subset (FP32 vs FP16)",
              lambda args, obs=None: figures.fig7a_top1_error(
                  scale=args.scale, obs=obs, jobs=args.jobs)),
    "fig7b": ("confidence difference per subset",
              lambda args, obs=None: figures.fig7b_confidence_difference(
                  scale=args.scale, obs=obs, jobs=args.jobs)),
    "fig8a": ("throughput per Watt",
              lambda args, obs=None: figures.fig8a_throughput_per_watt(
                  images=args.images, obs=obs, jobs=args.jobs)),
    "fig8b": ("projected throughput to 16 VPUs",
              lambda args, obs=None: figures.fig8b_projected_throughput(
                  images=args.images, obs=obs, jobs=args.jobs)),
}


def _obs_from_args(args: argparse.Namespace):
    """An ObsSession when --trace or --metrics was given, else None."""
    trace = getattr(args, "trace", None)
    metrics = getattr(args, "metrics", None)
    if trace is None and metrics is None:
        return None
    if trace is not None:
        _check_trace_path(trace)
    if metrics is not None:
        _check_trace_path(metrics)
    from repro.obs import ObsSession

    return ObsSession()


def _check_trace_path(trace: str) -> None:
    """Fail before the run, not after: the trace file is written last,
    and a bad path would discard minutes of simulation."""
    from pathlib import Path

    from repro.errors import ObservabilityError

    parent = Path(trace).resolve().parent
    if not parent.is_dir():
        raise ObservabilityError(
            f"--trace: directory {parent} does not exist")


def _finish_trace(args: argparse.Namespace, obs) -> None:
    """Print the utilisation report and write the trace file."""
    if obs is None:
        return
    from repro.harness.export import save_trace_json
    from repro.obs import utilisation_report

    print(utilisation_report(obs))
    if getattr(args, "trace", None) is not None:
        path = save_trace_json(obs, args.trace)
        print(f"wrote trace {path} "
              "(open in https://ui.perfetto.dev)")
    if getattr(args, "metrics", None) is not None:
        from repro.obs import write_metrics_jsonl

        path = write_metrics_jsonl(obs, args.metrics)
        print(f"wrote metrics {path} (analyze with "
              f"`python -m repro trace-analyze {path}`)")


def _serve_trace_extras(obs) -> None:
    """Per-request waterfall of the first completed sampled trace."""
    if obs is None:
        return
    from repro.obs import render_waterfall

    done = [t for t in obs.reqtrace.traces() if t.completed]
    if done:
        print(render_waterfall(obs.reqtrace, done[0].trace_id))
        print()

_BAR_FIGURES = {"fig6a", "fig7a"}


def _cmd_list(_args: argparse.Namespace) -> int:
    print("available experiments:")
    for name, (desc, _) in _FIGURES.items():
        print(f"  {name:<9} {desc}")
    print("  headline  the paper's §IV/§V headline numbers")
    print("  audit     verify every quantitative claim in the paper")
    print("  report    all of the above in one run")
    print("  profile   per-layer VPU timing report for a zoo model")
    print("  profile-run  one instrumented run + utilisation report")
    print("  chaos-run    seeded fault-injection sweep (kill stick k)")
    print("  serve-run    open-loop serving run with an SLO report")
    print("  serve-sweep  max sustainable arrival rate per config")
    print("  split-sweep  Pareto map of two-tier layer-cut "
          "placements")
    print("  cluster-run  sharded multi-host serving run (MPI sim)")
    print("  cluster-sweep  max sustainable rate per cluster size")
    print("  autoscale-run  elastic cluster run under a diurnal day")
    print("  autoscale-sweep  cost-vs-SLO frontier: autoscalers vs "
          "fixed-N")
    print("  workflow-run  multi-model workflow DAG run (cascade / "
          "ensemble / escalate)")
    print("  workflow-sweep  cascade vs monolithic classify at "
          "matched rates")
    print("  trace-analyze  offline timeline/waterfall/alert report "
          "from a --metrics dump")
    print("  perf-run     wall-clock perf suite (BENCH_PR9.json gate)")
    return 0


def _render(name: str, result) -> None:
    print(render_figure_table(result))
    print()
    if name in _BAR_FIGURES:
        print(bar_chart(result))
    else:
        print(line_chart(result))
    print()


def _cmd_figure(name: str, args: argparse.Namespace) -> int:
    obs = _obs_from_args(args)
    result = _FIGURES[name][1](args, obs)
    _render(name, result)
    _finish_trace(args, obs)
    if getattr(args, "json_dir", None):
        from pathlib import Path

        from repro.harness.export import save_figure_json

        out = Path(args.json_dir)
        out.mkdir(parents=True, exist_ok=True)
        save_figure_json(result, out / f"{name}.json")
        print(f"saved {out / (name + '.json')}")
    return 0


def _cmd_headline(args: argparse.Namespace) -> int:
    scale = None if args.scale in (None, "none") else args.scale
    obs = _obs_from_args(args)
    rows = figures.headline_table(images=args.images, error_scale=scale,
                                  obs=obs, jobs=args.jobs)
    print(render_comparison(rows, title="headline: paper vs measured"))
    _finish_trace(args, obs)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    md_sections: list[str] = []
    results = {}
    obs = _obs_from_args(args)
    skip_functional = args.scale in (None, "none")
    names = [n for n in _FIGURES
             if not (skip_functional and n in ("fig7a", "fig7b"))]
    for name in names:
        print("=" * 72)
        results[name] = _FIGURES[name][1](args, obs)
        _render(name, results[name])
        if getattr(args, "json_dir", None):
            from pathlib import Path

            from repro.harness.export import save_figure_json

            out = Path(args.json_dir)
            out.mkdir(parents=True, exist_ok=True)
            save_figure_json(results[name], out / f"{name}.json")
    print("=" * 72)
    scale = None if args.scale in (None, "none") else args.scale
    rows = figures.headline_table(images=args.images,
                                  error_scale=scale, obs=obs,
                                  jobs=args.jobs)
    print(render_comparison(rows, title="headline: paper vs measured"))
    _finish_trace(args, obs)

    if getattr(args, "markdown", None):
        from pathlib import Path

        from repro.harness.tables import (
            render_comparison_markdown,
            render_figure_markdown,
        )

        md_sections = [render_figure_markdown(results[n])
                       for n in names]
        md = ("# Reproduction report\n\n"
              + render_comparison_markdown(rows) + "\n"
              + "\n".join(md_sections))
        Path(args.markdown).write_text(md)
        print(f"wrote {args.markdown}")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.harness.claims import (
        render_audit,
        verify_claims,
        verify_functional_claims,
    )

    obs = _obs_from_args(args)
    results = verify_claims(images=args.images, obs=obs)
    if args.scale not in (None, "none"):
        results = results + verify_functional_claims(scale=args.scale)
    print(render_audit(results))
    _finish_trace(args, obs)
    return 0 if all(r.passed for r in results) else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.nn import get_model
    from repro.nn.weights import initialize_network
    from repro.vpu import compile_graph
    from repro.vpu.compiler import per_layer_report

    net = get_model(args.model)
    initialize_network(net)
    graph = compile_graph(net, num_shaves=args.shaves)
    print(per_layer_report(graph, top=args.top))
    return 0


def _cmd_profile_run(args: argparse.Namespace) -> int:
    from repro.harness.figures import _timing_framework
    from repro.obs import ObsSession, utilisation_report

    if args.trace:
        _check_trace_path(args.trace)
    obs = ObsSession()
    fw = _timing_framework(args.images, obs=obs)
    run = fw.run("synthetic", args.target, batch_size=args.batch)
    print(run.summary())
    print()
    print(utilisation_report(obs, run.wall_seconds))
    if args.trace:
        from repro.harness.export import save_trace_json

        path = save_trace_json(obs, args.trace)
        print(f"wrote trace {path} (open in https://ui.perfetto.dev)")
    return 0


def _chaos_point(point: tuple[int, int, int, float, object]):
    """Worker for one chaos-run victim: a fresh fault-tolerant run.

    Each plan gets its own framework and simulation environment, so
    the runs are independent and the seeded plans make them
    deterministic — fanning them across processes returns the same
    :class:`RunResult` values as the serial sweep.
    """
    images, devices, batch, timeout, plan = point
    from repro.harness.figures import paper_timing_graph
    from repro.ncsw import IntelVPU, NCSw, SyntheticSource

    fw = NCSw()
    fw.add_source("synthetic", SyntheticSource(images))
    fw.add_target("vpu", IntelVPU(
        graph=paper_timing_graph(), num_devices=devices,
        functional=False, fault_plan=plan, call_timeout=timeout))
    return fw.run("synthetic", "vpu", batch_size=batch)


def _cmd_chaos_run(args: argparse.Namespace) -> int:
    """Deterministic chaos sweep: kill stick k at t, for each k.

    Runs a healthy baseline first, then one fault-tolerant run per
    victim stick with a seeded :class:`FaultPlan` that fails it at
    ``--kill-at`` of the baseline wall time.  A run passes when every
    non-abandoned image still comes back classified; the command
    exits non-zero if any run loses work it should have saved.
    ``--jobs N`` fans the per-victim runs across processes (tracing
    keeps the sweep serial).
    """
    from repro.harness.figures import paper_timing_graph
    from repro.ncsw import FaultPlan, IntelVPU, NCSw, SyntheticSource
    from repro.ncsw.faults import BUSY

    if not 0.0 <= args.kill_at <= 1.0:
        print(f"--kill-at must be in [0, 1], got {args.kill_at}")
        return 2
    graph = paper_timing_graph()

    def make_run(plan=None, timeout=None, obs=None):
        fw = NCSw(obs=obs, scheduler=args.scheduler)
        fw.add_source("synthetic", SyntheticSource(args.images))
        fw.add_target("vpu", IntelVPU(
            graph=graph, num_devices=args.devices, functional=False,
            fault_plan=plan, call_timeout=timeout))
        return fw.run("synthetic", "vpu", batch_size=args.batch)

    base = make_run()
    t_start = min(r.t_submit for r in base.records)
    kill_time = t_start + args.kill_at * base.wall_seconds
    max_latency = max(r.latency for r in base.records)
    # A hung call can only be detected by deadline; several healthy
    # inference times of slack keeps false positives at zero.
    timeout = (args.timeout if args.timeout is not None
               else max(4.0 * max_latency, 0.05))
    busy_duration = 0.1 * base.wall_seconds
    baseline_tput = base.throughput()
    print(f"baseline: {base.summary()}")
    print(f"chaos: kind={args.kind} kill_at={kill_time * 1000:.2f} ms "
          f"(t0+{args.kill_at:.0%} of wall) call_timeout={timeout:.3f} s "
          f"seed={args.seed}")

    if args.random_plans > 0:
        # Seeded random schedules: plan i draws its victim and kill
        # time from seed+i.  Same seed -> same sweep, byte for byte.
        plans = [(f"seed {args.seed + i}",
                  FaultPlan.seeded(
                      args.seed + i, args.devices,
                      horizon=base.wall_seconds, start=t_start,
                      kinds=(args.kind,), busy_duration=busy_duration))
                 for i in range(args.random_plans)]
    else:
        victims = ([args.kill_stick] if args.kill_stick is not None
                   else list(range(args.devices)))
        plans = [(f"kill vpu{victim}",
                  FaultPlan.kill(
                      victim, kill_time, kind=args.kind,
                      duration=(busy_duration if args.kind == BUSY
                                else 0.0)))
                 for victim in victims]
    obs = _obs_from_args(args)
    if args.jobs > 1 and obs is None:
        from repro.harness.experiment import parallel_map

        points = [(args.images, args.devices, args.batch, timeout,
                   plan) for _, plan in plans]
        runs = parallel_map(_chaos_point, points, jobs=args.jobs)
    else:
        runs = [make_run(plan=plan, timeout=timeout, obs=obs)
                for _, plan in plans]
    failed = False
    for (label, plan), res in zip(plans, runs):
        ok = res.images == args.images - res.abandoned
        failed = failed or not ok
        # Post-fault throughput over the survivors only.
        fault_time = min((f.at for f in plan.faults),
                         default=kill_time)
        after = [r for r in res.records if r.t_complete > fault_time]
        tput = ""
        if after:
            window = max(r.t_complete for r in after) - fault_time
            if window > 0:
                tput = (f" post-fault {len(after) / window:.1f} img/s "
                        f"({len(after) / window / baseline_tput:.0%} "
                        "of baseline)")
        print(f"  {label}: {'ok' if ok else 'LOST WORK'} | "
              f"{res.images}/{args.images} classified, "
              f"{res.reassigned} reassigned, {res.abandoned} "
              f"abandoned, {len(res.failures)} failure event(s)"
              + tput)
    _finish_trace(args, obs)
    if failed:
        print("chaos-run: FAILED (work lost without being abandoned)")
        return 1
    print("chaos-run: all victims survived with full accounting")
    return 0


def _parse_split_token(token: str):
    """Parse a split token like ``vpu4+cpu`` into (front, back, sticks).

    Exactly one side must be the VPU; the other a host tier.  Returns
    None (after printing the error) on a malformed token.
    """
    def side(part: str):
        if part in ("cpu", "gpu"):
            return part, None
        if part == "vpu":
            return "vpu", 1
        if part.startswith("vpu") and part[3:].isdigit():
            return "vpu", int(part[3:])
        return None, None

    parts = token.split("+")
    if len(parts) != 2:
        print(f"split spec {token!r} must be <front>+<back>")
        return None
    (front, n_front), (back, n_back) = side(parts[0]), side(parts[1])
    if front is None or back is None or \
            (front == "vpu") == (back == "vpu"):
        print(f"split spec {token!r} needs exactly one vpu side and "
              "one of cpu/gpu (e.g. vpu4+cpu, cpu+vpu2)")
        return None
    return front, back, (n_front if n_front is not None else n_back)


def _serve_targets(spec: str, *, fault_plan=None, call_timeout=None):
    """Build named targets from a spec like ``vpu8`` or ``vpu4,cpu``.

    Tokens: ``cpu``, ``gpu``, ``vpuN`` (N sticks, 1-8), or a split
    placement ``<front>+<back>`` with exactly one VPU side
    (``vpu4+cpu``, ``cpu+vpu2``) — the latency-optimal cut of the
    paper network pipelined across the two tiers.  All targets run
    timing-only (non-functional) on the paper-scale GoogLeNet.
    A fault plan / call timeout applies to every VPU token.
    """
    from repro.harness.experiment import (
        paper_timing_graph,
        paper_timing_network,
    )
    from repro.ncsw import IntelCPU, IntelVPU, NvGPU

    targets = {}
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if token == "cpu":
            targets[token] = IntelCPU(paper_timing_network(),
                                      functional=False)
        elif token == "gpu":
            targets[token] = NvGPU(paper_timing_network(),
                                   functional=False)
        elif "+" in token:
            from repro.split import build_split_target
            parsed = _parse_split_token(token)
            if parsed is None:
                return None
            front, back, sticks = parsed
            targets[token] = build_split_target(
                paper_timing_network(), graph=paper_timing_graph(),
                front=front, back=back, num_sticks=sticks,
                functional=False)
        elif token.startswith("vpu") and token[3:].isdigit():
            targets[token] = IntelVPU(
                graph=paper_timing_graph(),
                num_devices=int(token[3:]), functional=False,
                fault_plan=fault_plan, call_timeout=call_timeout)
        else:
            print(f"--backends: unknown token {token!r} "
                  "(expected cpu, gpu, vpuN or front+back)")
            return None
    if not targets:
        print("--backends: no targets given")
        return None
    return targets


def _cmd_split_sweep(args: argparse.Namespace) -> int:
    """Map the split-placement design space of one device pairing."""
    from repro.split import (
        SplitPlanner,
        render_split_table,
        single_device_points,
    )

    parsed = _parse_split_token(args.devices)
    if parsed is None:
        return 1
    front, back, sticks = parsed
    if args.smoke:
        from repro.nn.zoo import get_model
        from repro.vpu.compiler.compile import compile_graph
        network = get_model("googlenet-micro")
        graph = compile_graph(network)
    else:
        from repro.harness.experiment import (
            paper_timing_graph,
            paper_timing_network,
        )
        network = paper_timing_network()
        graph = paper_timing_graph()
    planner = SplitPlanner(network, graph=graph, front=front,
                           back=back, num_sticks=sticks)
    plans = planner.sweep()
    if not plans:
        print(f"split-sweep: {network.name} has no valid cuts")
        return 1
    singles = single_device_points(network, graph, num_sticks=sticks)
    print(render_split_table(plans, singles,
                             objective=args.objective), end="")
    return 0


def _serve_workload(args: argparse.Namespace):
    """Build the arrival process selected by --workload."""
    from repro.serve import (
        BurstyWorkload,
        DiurnalWorkload,
        PoissonWorkload,
        TraceWorkload,
    )

    if args.workload == "poisson":
        return PoissonWorkload(rate=args.rate, seed=args.seed)
    if args.workload == "bursty":
        burst = (args.burst_rate if args.burst_rate is not None
                 else 4.0 * args.rate)
        return BurstyWorkload(base_rate=args.rate, burst_rate=burst,
                              seed=args.seed)
    if args.workload == "diurnal":
        return DiurnalWorkload(peak_rate=args.rate,
                               period_s=args.period, seed=args.seed)
    # replay
    if args.replay is None:
        print("--workload replay needs --replay PATH")
        return None
    return TraceWorkload.from_file(args.replay)


def _serve_server(args: argparse.Namespace, targets, obs=None):
    from repro.serve import InferenceServer

    server = InferenceServer(
        queue_depth=args.queue_depth,
        admission=args.admission,
        max_batch_size=args.max_batch,
        max_wait_s=args.max_wait / 1000.0,
        policy=args.route,
        slo_seconds=args.slo / 1000.0,
        deadline_seconds=(args.deadline / 1000.0
                          if args.deadline is not None else None),
        warmup=args.warmup,
        scheduler=getattr(args, "scheduler", None),
        obs=obs)
    for name, target in targets.items():
        server.add_target(name, target)
    return server


def _cmd_serve_run(args: argparse.Namespace) -> int:
    """One open-loop serving run with a full SLO report.

    With ``--kill-stick`` a healthy baseline runs first to locate the
    serving window, then the measured run fails that stick at
    ``--kill-at`` of the baseline's serving wall time — the serving
    analogue of ``chaos-run``.  Exits non-zero when nothing completes.
    """
    from repro.serve import render_slo_report

    workload = _serve_workload(args)
    if workload is None:
        return 2
    if not 0.0 <= args.kill_at <= 1.0:
        print(f"--kill-at must be in [0, 1], got {args.kill_at}")
        return 2

    fault_plan = None
    call_timeout = None
    if args.kill_stick is not None:
        from repro.ncsw import FaultPlan

        targets = _serve_targets(args.backends)
        if targets is None:
            return 2
        base = _serve_server(args, targets).run(workload,
                                               args.requests)
        kill_time = (base.prepare_seconds
                     + args.kill_at * base.wall_seconds)
        fault_plan = FaultPlan.kill(args.kill_stick, kill_time,
                                    kind=args.kind)
        call_timeout = args.timeout
        print(f"baseline: {base.summary()}")
        print(f"chaos: kill stick {args.kill_stick} ({args.kind}) at "
              f"{kill_time * 1000:.2f} ms "
              f"(serving start + {args.kill_at:.0%} of wall)")
        print()

    targets = _serve_targets(args.backends, fault_plan=fault_plan,
                             call_timeout=call_timeout)
    if targets is None:
        return 2
    obs = _obs_from_args(args)
    result = _serve_server(args, targets, obs=obs).run(workload,
                                                       args.requests)
    alerts = policy = None
    if obs is not None:
        from repro.obs import default_policy, serve_alerts

        alerts = serve_alerts(result, session=obs)
        policy = default_policy(result.wall_seconds)
    print(render_slo_report(result, workload=workload.describe(),
                            alerts=alerts, policy=policy))
    if obs is not None:
        print()
    _serve_trace_extras(obs)
    _finish_trace(args, obs)
    return 0 if result.completed > 0 else 1


def _sweep_point(args: argparse.Namespace, token: str):
    """Worker for one serve-sweep configuration.

    Estimates the closed-loop capacity, then bisects the maximum
    sustainable arrival rate.  Every probe builds a fresh server and
    reseeds the workload, so configurations are independent of each
    other and the sweep fans across processes without changing any
    probe's outcome.  Returns ``(capacity, SweepResult)`` or ``None``
    for an invalid token.
    """
    from repro.ncsw import NCSw, SyntheticSource
    from repro.serve import PoissonWorkload, find_max_rate

    targets = _serve_targets(token)
    if targets is None:
        return None
    # Closed-loop capacity estimate: a short batch campaign.
    target = next(iter(targets.values()))
    fw = NCSw()
    fw.add_source("synthetic", SyntheticSource(64))
    fw.add_target(token, target)
    batch = max(1, target.preferred_batch_size)
    capacity = fw.run("synthetic", token,
                      batch_size=batch).throughput()

    def run_at(rate: float, token=token):
        srv = _serve_server(args, _serve_targets(token))
        return srv.run(PoissonWorkload(rate=rate, seed=args.seed),
                       args.requests)

    sweep = find_max_rate(run_at, slo_seconds=args.slo / 1000.0,
                          hi=2.0 * capacity, steps=args.steps,
                          label=token)
    return capacity, sweep


def _cmd_serve_sweep(args: argparse.Namespace) -> int:
    """Bisect the max sustainable arrival rate per configuration.

    Each ``--configs`` token becomes one single-backend configuration
    (e.g. ``vpu1,vpu2,vpu4,vpu8`` sweeps the paper's stick scaling in
    the serving regime).  The starting bracket is twice the measured
    closed-loop throughput of each configuration.  ``--jobs N`` fans
    the configurations across processes; output is collected and
    printed in configuration order either way.
    """
    from functools import partial

    from repro.harness.experiment import parallel_map
    from repro.serve import render_sweep_table

    tokens = [t.strip() for t in args.configs.split(",") if t.strip()]
    if not tokens:
        print("--configs: no configurations given")
        return 2
    outcomes = parallel_map(partial(_sweep_point, args), tokens,
                            jobs=args.jobs)
    if any(o is None for o in outcomes):
        return 2
    results = []
    for capacity, sweep in outcomes:
        print(f"{sweep.summary()} "
              f"(closed-loop capacity {capacity:.1f} img/s)")
        results.append(sweep)
    print()
    print(render_sweep_table(results))
    return 0


def _flow_coordinator(args: argparse.Namespace, wf, obs=None):
    """A FlowCoordinator wired from the workflow-* CLI flags."""
    from repro.flow import FlowCoordinator

    return FlowCoordinator(
        wf,
        seed=args.seed,
        queue_depth=args.queue_depth,
        admission=args.admission,
        max_wait_s=args.max_wait / 1000.0,
        slo_seconds=args.slo / 1000.0,
        deadline_seconds=(args.deadline / 1000.0
                          if args.deadline is not None else None),
        warmup=args.warmup,
        obs=obs)


def _cmd_workflow_run(args: argparse.Namespace) -> int:
    """One open-loop run of a built-in workflow DAG.

    Prints the compiled graph (groups, edges, fan-out regions), then
    the workflow report: per-stage serving tables, fan-out accounting
    and the workflow-level SLO roll-up.  Exits non-zero when nothing
    completes.
    """
    from repro.errors import FlowError
    from repro.flow import build_workflow, render_workflow_report
    from repro.serve import PoissonWorkload

    if args.smoke:
        args.requests = min(args.requests, 40)
        args.rate = min(args.rate, 80.0)
        args.devices = min(args.devices, 2)

    kwargs = {"vpu_devices": args.devices}
    if args.workflow == "cascade" and args.stage_slo is not None:
        kwargs["stage_slo_seconds"] = args.stage_slo / 1000.0
    try:
        wf = build_workflow(args.workflow, args.scale, **kwargs)
    except FlowError as exc:
        print(f"workflow-run: {exc}")
        return 2
    print(wf.describe())
    print()

    obs = _obs_from_args(args)
    workload = PoissonWorkload(rate=args.rate, seed=args.seed)
    result = _flow_coordinator(args, wf, obs=obs).run(
        workload, args.requests)
    print(render_workflow_report(result,
                                 workload=workload.describe()))
    if obs is not None:
        print()
    _serve_trace_extras(obs)
    _finish_trace(args, obs)
    return 0 if result.completed > 0 else 1


def _cmd_workflow_sweep(args: argparse.Namespace) -> int:
    """Cascade vs monolithic classify at matched offered rates.

    At each rate the same Poisson arrival process drives both the
    detect→crop→classify cascade and a single monolithic classify
    stage, so the table isolates what the extra pipeline stages cost
    (fan-out multiplies backend load; the join stretches the tail).
    """
    from repro.flow import build_workflow
    from repro.serve import PoissonWorkload

    if args.smoke:
        args.requests = min(args.requests, 30)
        if args.rates is None:
            args.rates = "20,40"
        args.devices = min(args.devices, 2)
    if args.rates is None:
        args.rates = "20,40,80"
    try:
        rates = [float(t) for t in args.rates.split(",") if t.strip()]
    except ValueError:
        print(f"--rates: bad rate list {args.rates!r}")
        return 2
    if not rates:
        print("--rates: no rates given")
        return 2

    print(f"== cascade vs monolithic (scale {args.scale}, "
          f"{args.requests} workflows per point, SLO "
          f"{args.slo:.0f} ms) ==")
    print(f"{'rate wf/s':>9}  {'workflow':<12} {'done':>9} "
          f"{'sub-req':>7} {'p50 ms':>9} {'p99 ms':>9} "
          f"{'SLO att':>8} {'goodput':>8}")
    worst_loss = 0.0
    for rate in rates:
        for name in ("cascade", "monolithic"):
            wf = build_workflow(name, args.scale,
                                vpu_devices=args.devices)
            result = _flow_coordinator(args, wf).run(
                PoissonWorkload(rate=rate, seed=args.seed),
                args.requests)
            worst_loss = max(worst_loss, result.loss_rate)
            done = f"{result.completed}/{result.offered}"
            try:
                p50 = f"{result.p50 * 1000:9.3f}"
                p99 = f"{result.p99 * 1000:9.3f}"
            except ValueError:
                p50 = f"{'-':>9}"
                p99 = f"{'-':>9}"
            print(f"{rate:>9.1f}  {name:<12} {done:>9} "
                  f"{result.sub_requests_spawned:>7} {p50} {p99} "
                  f"{result.slo_attainment:>7.1%} "
                  f"{result.goodput:>8.2f}")
    print()
    print(f"worst-case workflow loss across the sweep: "
          f"{worst_loss:.1%}")
    return 0


def _cluster_targets(hosts: int, spec: str):
    """One fresh target per host from a spec like ``vpu2`` or
    ``vpu4,cpu``.

    Tokens cycle across the hosts, so ``--hosts 4 --host-backends
    vpu2,cpu`` alternates VPU and CPU hosts.  Every host gets its own
    target instance — cluster hosts share nothing but the simulated
    interconnect.
    """
    from repro.harness.experiment import (
        paper_timing_graph,
        paper_timing_network,
    )
    from repro.ncsw import IntelCPU, IntelVPU, NvGPU

    if hosts < 1:
        print(f"--hosts: need at least 1 host, got {hosts}")
        return None
    tokens = [t.strip() for t in spec.split(",") if t.strip()]
    if not tokens:
        print("--host-backends: no tokens given")
        return None
    targets = []
    for i in range(hosts):
        token = tokens[i % len(tokens)]
        if token == "cpu":
            targets.append(IntelCPU(paper_timing_network(),
                                    functional=False))
        elif token == "gpu":
            targets.append(NvGPU(paper_timing_network(),
                                 functional=False))
        elif token.startswith("vpu") and token[3:].isdigit():
            targets.append(IntelVPU(
                graph=paper_timing_graph(),
                num_devices=int(token[3:]), functional=False))
        else:
            print(f"--host-backends: unknown token {token!r} "
                  "(expected cpu, gpu or vpuN)")
            return None
    return targets


def _cluster_server(args: argparse.Namespace, targets, *,
                    host_faults=None, autoscaler=None,
                    initial_hosts=None, obs=None):
    from repro.cluster import ClusterServer

    return ClusterServer(
        targets,
        window=args.window,
        spill_threshold=args.spill_threshold,
        queue_depth=args.queue_depth,
        admission=args.admission,
        max_batch_size=args.max_batch,
        max_wait_s=args.max_wait / 1000.0,
        slo_seconds=args.slo / 1000.0,
        deadline_seconds=(args.deadline / 1000.0
                          if args.deadline is not None else None),
        warmup=args.warmup,
        host_faults=host_faults,
        autoscaler=autoscaler,
        initial_hosts=initial_hosts,
        scheduler=getattr(args, "scheduler", None),
        obs=obs)


def _cmd_cluster_run(args: argparse.Namespace) -> int:
    """One sharded cluster serving run with a full roll-up report.

    With ``--kill-host`` a healthy baseline runs first to locate the
    serving window, then the measured run kills that whole rank at
    ``--kill-at`` of the baseline's serving wall time — the cluster
    analogue of ``serve-run --kill-stick``, except an entire host
    (channel, queue, batcher, backends) dies and its owned requests
    re-shard to the survivors.  Exits non-zero when nothing completes.
    """
    from repro.cluster import render_cluster_report
    from repro.serve import PoissonWorkload

    if not 0.0 <= args.kill_at <= 1.0:
        print(f"--kill-at must be in [0, 1], got {args.kill_at}")
        return 2
    if (args.kill_host is not None
            and not 0 <= args.kill_host < args.hosts):
        print(f"--kill-host must be in [0, {args.hosts - 1}], "
              f"got {args.kill_host}")
        return 2
    workload = PoissonWorkload(rate=args.rate, seed=args.seed)

    host_faults = None
    if args.kill_host is not None:
        from repro.ncsw import FaultPlan

        targets = _cluster_targets(args.hosts, args.host_backends)
        if targets is None:
            return 2
        base = _cluster_server(args, targets).run(workload,
                                                  args.requests)
        kill_time = (base.prepare_seconds
                     + args.kill_at * base.wall_seconds)
        host_faults = FaultPlan.kill(args.kill_host, kill_time)
        print(f"baseline: {base.summary()}")
        print(f"chaos: kill host {args.kill_host} (whole rank "
              f"{args.kill_host + 1}) at {kill_time * 1000:.2f} ms "
              f"(serving start + {args.kill_at:.0%} of wall)")
        print()

    targets = _cluster_targets(args.hosts, args.host_backends)
    if targets is None:
        return 2
    obs = _obs_from_args(args)
    result = _cluster_server(args, targets, host_faults=host_faults,
                             obs=obs).run(workload, args.requests)
    alerts = policy = None
    if obs is not None:
        from repro.obs import default_policy, serve_alerts

        alerts = serve_alerts(result, session=obs)
        policy = default_policy(result.wall_seconds)
    print(render_cluster_report(result,
                                workload=workload.describe(),
                                alerts=alerts, policy=policy))
    if obs is not None:
        print()
    _serve_trace_extras(obs)
    _finish_trace(args, obs)
    return 0 if result.completed > 0 else 1


def _cluster_sweep_point(args: argparse.Namespace, hosts: int):
    """Worker for one cluster-sweep host count.

    The bracket is twice the summed closed-loop capacity of the host
    targets (each unique backend token measured once).  Every probe
    builds a fresh cluster and reseeds the workload, mirroring
    ``serve-sweep``'s independence contract, so host counts fan
    across processes without changing any probe's outcome.  Returns
    ``(capacity, SweepResult)`` or ``None`` for an invalid spec.
    """
    from repro.ncsw import NCSw, SyntheticSource
    from repro.serve import PoissonWorkload, find_max_rate

    tokens = [t.strip() for t in args.host_backends.split(",")
              if t.strip()]
    capacity = 0.0
    per_token: dict[str, float] = {}
    for i in range(hosts):
        token = tokens[i % len(tokens)] if tokens else ""
        if token not in per_token:
            single = _cluster_targets(1, token)
            if single is None:
                return None
            target = single[0]
            fw = NCSw()
            fw.add_source("synthetic", SyntheticSource(64))
            fw.add_target(token, target)
            batch = max(1, target.preferred_batch_size)
            per_token[token] = fw.run(
                "synthetic", token, batch_size=batch).throughput()
        capacity += per_token[token]

    def run_at(rate: float, hosts=hosts):
        targets = _cluster_targets(hosts, args.host_backends)
        srv = _cluster_server(args, targets)
        return srv.run(PoissonWorkload(rate=rate, seed=args.seed),
                       args.requests)

    sweep = find_max_rate(run_at, slo_seconds=args.slo / 1000.0,
                          hi=2.0 * capacity, steps=args.steps,
                          label=f"hosts={hosts}")
    return capacity, sweep


def _cmd_cluster_sweep(args: argparse.Namespace) -> int:
    """Max sustainable arrival rate per cluster size.

    The cluster analogue of ``serve-sweep``: each ``--hosts`` count
    becomes one sharded-cluster configuration and the sweep bisects
    its maximum sustainable arrival rate under the shared SLO — the
    hosts-scaling curve (how close does N hosts get to N times one
    host's rate).  ``--smoke`` shrinks everything to CI size.
    """
    from functools import partial

    from repro.harness.experiment import parallel_map
    from repro.serve import render_sweep_table

    if args.smoke:
        args.requests = min(args.requests, 96)
        args.steps = min(args.steps, 3)
        if args.hosts is None:
            args.hosts = "1,2"
    if args.hosts is None:
        args.hosts = "1,2,4,8"
    try:
        counts = [int(t) for t in args.hosts.split(",") if t.strip()]
    except ValueError:
        print(f"--hosts: expected a comma list of host counts, "
              f"got {args.hosts!r}")
        return 2
    if not counts or any(n < 1 for n in counts):
        print(f"--hosts: host counts must be >= 1, got {args.hosts!r}")
        return 2
    outcomes = parallel_map(partial(_cluster_sweep_point, args),
                            counts, jobs=args.jobs)
    if any(o is None for o in outcomes):
        return 2
    results = []
    for capacity, sweep in outcomes:
        print(f"{sweep.summary()} "
              f"(closed-loop capacity {capacity:.1f} img/s)")
        results.append(sweep)
    print()
    print(render_sweep_table(results))
    return 0


def _host_closed_loop_rate(args: argparse.Namespace):
    """Closed-loop throughput of one host built from the first
    ``--host-backends`` token — the capacity unit the autoscale
    commands size the diurnal day and the predictive policy with."""
    from repro.ncsw import NCSw, SyntheticSource

    tokens = [t.strip() for t in args.host_backends.split(",")
              if t.strip()]
    if not tokens:
        print("--host-backends: no tokens given")
        return None
    single = _cluster_targets(1, tokens[0])
    if single is None:
        return None
    target = single[0]
    fw = NCSw()
    fw.add_source("synthetic", SyntheticSource(64))
    fw.add_target(tokens[0], target)
    batch = max(1, target.preferred_batch_size)
    rate = fw.run("synthetic", tokens[0],
                  batch_size=batch).throughput()
    return rate, batch


def _autoscale_setup(args: argparse.Namespace):
    """Shared autoscale-run/-sweep setup: the diurnal day trace plus
    the per-host capacity estimate.  Returns ``(workload, host_rate,
    floor_s)`` — the last is the per-request service-latency floor
    (one calibration batch) the fluid model attributes to every
    completion — or None for an invalid spec."""
    from repro.serve import DiurnalWorkload

    calibrated = _host_closed_loop_rate(args)
    if calibrated is None:
        return None
    host_rate, batch = calibrated
    peak = (args.peak_rate if args.peak_rate is not None
            else 2.5 * host_rate)
    workload = DiurnalWorkload(peak_rate=peak, period_s=args.period,
                               floor_frac=args.floor, seed=args.seed)
    return workload, host_rate, batch / host_rate


def _fluid_cluster(args: argparse.Namespace, workload,
                   host_rate: float, floor_s: float, *,
                   pool: int, autoscaler=None):
    """Build the hybrid fluid model mirroring the DES campaign args."""
    from repro.sim.fluid import FluidCluster

    return FluidCluster(
        workload, host_rate=host_rate, pool=pool,
        autoscaler=autoscaler,
        slo_seconds=args.slo / 1000.0,
        service_floor_s=floor_s,
        seed=args.seed)


def _autoscaler_from_args(args: argparse.Namespace, workload,
                          host_rate: float, kind: str):
    from repro.cluster import (
        Autoscaler,
        PredictivePolicy,
        ReactivePolicy,
    )

    if kind == "predictive":
        policy = PredictivePolicy(workload, host_rate=host_rate,
                                  lead_s=args.lead / 1000.0,
                                  utilization=args.utilization)
    else:
        policy = ReactivePolicy(high_water=args.high_water,
                                low_water=args.low_water)
    max_hosts = args.max_hosts if args.max_hosts is not None \
        else args.pool
    return Autoscaler(policy,
                      min_hosts=args.min_hosts,
                      max_hosts=max_hosts,
                      interval_s=args.interval / 1000.0,
                      cooldown_s=args.cooldown / 1000.0,
                      warm_pool=args.warm_pool)


def _cmd_autoscale_run(args: argparse.Namespace) -> int:
    """One elastic cluster run over a diurnal day trace.

    A pool of ``--pool`` host slots sits behind the frontend; the
    chosen policy (reactive by default) scales the live set against
    the modelled day.  Exits non-zero when any request was lost —
    elastic scaling must never drop work.
    """
    from repro.cluster import render_cluster_report

    if args.smoke:
        args.requests = min(args.requests, 120)
        args.pool = min(args.pool, 3)
    if args.pool < 1:
        print(f"--pool: need at least 1 slot, got {args.pool}")
        return 2
    setup = _autoscale_setup(args)
    if setup is None:
        return 2
    workload, host_rate, floor_s = setup
    if args.fluid or args.fluid_gate:
        return _autoscale_run_fluid(args, workload, host_rate,
                                    floor_s)
    autoscaler = _autoscaler_from_args(args, workload, host_rate,
                                       args.policy)
    targets = _cluster_targets(args.pool, args.host_backends)
    if targets is None:
        return 2
    obs = _obs_from_args(args)
    result = _cluster_server(args, targets, autoscaler=autoscaler,
                             obs=obs).run(workload, args.requests)
    alerts = policy = None
    if obs is not None:
        from repro.obs import default_policy, serve_alerts

        alerts = serve_alerts(result, session=obs)
        policy = default_policy(result.wall_seconds)
    print(f"policy: {autoscaler.policy.describe()} "
          f"(~{host_rate:.1f} req/s/host closed loop)")
    print()
    print(render_cluster_report(result,
                                workload=workload.describe(),
                                alerts=alerts, policy=policy))
    if obs is not None:
        print()
    _serve_trace_extras(obs)
    _finish_trace(args, obs)
    lost = result.offered - result.completed
    if lost:
        print()
        print(f"LOST {lost} requests across scale events")
    return 0 if result.completed > 0 and lost == 0 else 1


def _autoscale_run_fluid(args: argparse.Namespace, workload,
                         host_rate: float, floor_s: float) -> int:
    """Hybrid fluid run of the elastic day (``--fluid``).

    ``--fluid-gate`` additionally runs the pure-DES cluster on the
    same configuration and asserts fluid/DES agreement; the command
    exits non-zero when the equivalence gate fails.
    """
    from repro.sim.fluid import equivalence_gate

    autoscaler = _autoscaler_from_args(args, workload, host_rate,
                                       args.policy)
    fluid = _fluid_cluster(args, workload, host_rate, floor_s,
                           pool=args.pool,
                           autoscaler=autoscaler).run(args.requests)
    print(f"policy: {autoscaler.policy.describe()} "
          f"(~{host_rate:.1f} req/s/host closed loop)")
    print(f"fluid: {fluid.summary()}")
    print(f"scale events: {len(fluid.scale_events)}")
    if not args.fluid_gate:
        return 0
    targets = _cluster_targets(args.pool, args.host_backends)
    if targets is None:
        return 2
    des_autoscaler = _autoscaler_from_args(args, workload, host_rate,
                                           args.policy)
    result = _cluster_server(
        args, targets,
        autoscaler=des_autoscaler).run(workload, args.requests)
    print(f"des:   {result.summary()}")
    print()
    report = equivalence_gate(fluid, result)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_autoscale_sweep(args: argparse.Namespace) -> int:
    """The cost-vs-SLO frontier: elastic policies vs fixed-N.

    Runs the same diurnal day trace through every fixed host count
    (1..pool) and both autoscale policies, then renders host-seconds
    against SLO attainment — the economics table: how much capacity
    does tracking the day shape save at equal service quality.
    """
    from repro.cluster import cost_point, render_cost_table

    if args.smoke:
        args.requests = min(args.requests, 120)
        args.pool = min(args.pool, 3)
    if args.pool < 1:
        print(f"--pool: need at least 1 slot, got {args.pool}")
        return 2
    setup = _autoscale_setup(args)
    if setup is None:
        return 2
    workload, host_rate, floor_s = setup
    print(f"calibrated: ~{host_rate:.1f} req/s/host closed-loop "
          f"capacity, day peak {workload.peak_rate:.4g} req/s")
    fluid = args.fluid
    points = []
    for n in range(1, args.pool + 1):
        if fluid:
            result = _fluid_cluster(args, workload, host_rate,
                                    floor_s, pool=n).run(
                                        args.requests)
        else:
            targets = _cluster_targets(n, args.host_backends)
            if targets is None:
                return 2
            result = _cluster_server(args, targets).run(workload,
                                                        args.requests)
        points.append(cost_point(f"fixed-{n}", result))
        print(f"fixed-{n}: {result.summary()}")
    for kind in ("reactive", "predictive"):
        autoscaler = _autoscaler_from_args(args, workload, host_rate,
                                           kind)
        if fluid:
            result = _fluid_cluster(
                args, workload, host_rate, floor_s, pool=args.pool,
                autoscaler=autoscaler).run(args.requests)
        else:
            targets = _cluster_targets(args.pool, args.host_backends)
            if targets is None:
                return 2
            result = _cluster_server(
                args, targets,
                autoscaler=autoscaler).run(workload, args.requests)
        points.append(cost_point(kind, result))
        print(f"{kind}: {result.summary()}")
    print()
    print(render_cost_table(points, slo_seconds=args.slo / 1000.0))
    return 0


def _cmd_trace_analyze(args: argparse.Namespace) -> int:
    """Offline analysis of a recorded metrics JSONL dump.

    Loads a file written by ``serve-run --metrics`` / ``cluster-run
    --metrics`` (or :func:`repro.obs.write_metrics_jsonl` directly)
    and prints the windowed timeline, per-request waterfalls, and the
    burn-rate / anomaly alerts recomputed from the recorded events —
    no re-simulation required.
    """
    from repro.errors import ObservabilityError
    from repro.obs import (
        burn_rate_alerts,
        dead_rank_alerts,
        default_policy,
        load_metrics_jsonl,
        outcomes_from_traces,
        queue_slope_alerts,
        render_alerts,
        render_timeline,
        render_waterfall,
    )

    try:
        session = load_metrics_jsonl(args.path)
    except (OSError, ObservabilityError) as exc:
        print(f"trace-analyze: {exc}")
        return 2
    extent = session.tracer.extent
    traces = session.reqtrace.traces()
    print(f"trace analysis of {args.path}")
    print(f"  extent : {extent * 1000:.1f} ms simulated")
    print(f"  traces : {len(traces)} sampled requests")
    print()
    width = args.window / 1000.0
    print(render_timeline(session, width=width))
    shown = 0
    for trace in traces:
        if shown >= args.waterfalls:
            break
        if trace.completed:
            print()
            print(render_waterfall(session.reqtrace, trace.trace_id))
            shown += 1
    alerts = []
    policy = None
    if traces and extent > 0:
        policy = default_policy(extent)
        outcomes = outcomes_from_traces(session.reqtrace,
                                        args.slo / 1000.0)
        alerts.extend(burn_rate_alerts(outcomes, extent, policy))
    if extent > 0:
        alerts.extend(queue_slope_alerts(session, width=width,
                                         end=extent))
    alerts.extend(dead_rank_alerts(session))
    alerts.sort(key=lambda a: (a.at, a.kind, a.metric))
    print()
    print(render_alerts(alerts, policy=policy))
    return 0


def _cmd_perf_run(args: argparse.Namespace) -> int:
    """Time the wall-clock perf suite; write and/or check BENCH json.

    ``--check FILE`` is the CI regression gate: the fresh numbers are
    compared against the committed file after rescaling for machine
    speed, and any workload more than ``--tolerance`` slower fails
    the command.
    """
    from repro.harness import perf

    mode = "smoke" if args.smoke else "full"
    samples = perf.run_suite(mode)
    baseline = (perf.load_bench(args.baseline)
                if args.baseline else None)
    print(perf.render_perf_table(
        samples, (baseline or {}).get("modes"), mode=mode))
    if args.out:
        modes = {mode: samples}
        other = "smoke" if mode == "full" else "full"
        modes[other] = perf.run_suite(other)
        path = perf.write_bench(args.out, modes, baseline=baseline)
        print(f"wrote {path}")
    if args.check:
        committed = perf.load_bench(args.check)
        failures = perf.check_regression(
            samples, committed, mode=mode, tolerance=args.tolerance)
        if failures:
            for line in failures:
                print(f"PERF REGRESSION: {line}")
            return 1
        print(f"perf check passed (mode={mode}, tolerance "
              f"{args.tolerance:.0%})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--images", type=int, default=160,
                        help="timing images per measurement")
    common.add_argument("--scale", default="default",
                        help="functional scale: smoke|default|paper")
    common.add_argument("--json-dir", default=None,
                        help="also save each figure as JSON here")
    common.add_argument("--trace", default=None, metavar="PATH",
                        help="record a Perfetto trace_event JSON here "
                             "and print the utilisation report")
    common.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan independent runs across N processes "
                             "(results identical to --jobs 1; tracing "
                             "and jitter keep the run serial)")

    for name, (desc, _) in _FIGURES.items():
        sub.add_parser(name, help=desc, parents=[common])
    sub.add_parser("headline", help="headline paper-vs-measured table",
                   parents=[common])
    report = sub.add_parser("report", help="regenerate everything",
                            parents=[common])
    sub.add_parser("audit", help="verify every quantitative claim",
                   parents=[common])
    report.add_argument("--markdown", default=None,
                        help="write the full report as markdown here")

    profile = sub.add_parser("profile",
                             help="per-layer VPU timing report")
    profile.add_argument("--model", default="googlenet-mini")
    profile.add_argument("--shaves", type=int, default=12)
    profile.add_argument("--top", type=int, default=None)

    profile_run = sub.add_parser(
        "profile-run",
        help="one instrumented run + per-device utilisation report")
    profile_run.add_argument(
        "--target", default="vpu8",
        choices=["cpu", "gpu", "vpu1", "vpu2", "vpu4", "vpu8"])
    profile_run.add_argument("--images", type=int, default=160)
    profile_run.add_argument("--batch", type=int, default=8)
    profile_run.add_argument("--trace", default=None, metavar="PATH",
                             help="also write the Perfetto trace here")

    chaos = sub.add_parser(
        "chaos-run",
        help="seeded fault-injection sweep over the multi-VPU rig")
    chaos.add_argument("--devices", type=int, default=8,
                       help="NCS sticks to drive (1-8)")
    chaos.add_argument("--images", type=int, default=160)
    chaos.add_argument("--batch", type=int, default=8)
    chaos.add_argument("--kill-stick", type=int, default=None,
                       metavar="K",
                       help="fail only stick K (default: sweep all)")
    chaos.add_argument("--kill-at", type=float, default=0.5,
                       metavar="FRAC",
                       help="fault time as a fraction of the healthy "
                            "run's wall time (default 0.5)")
    chaos.add_argument("--kind", default="death",
                       choices=["death", "hang", "thermal", "busy"])
    chaos.add_argument("--seed", type=int, default=0,
                       help="base seed for --random-plans schedules")
    chaos.add_argument("--random-plans", type=int, default=0,
                       metavar="N",
                       help="run N seeded random schedules instead of "
                            "the per-stick sweep")
    chaos.add_argument("--timeout", type=float, default=None,
                       help="per-call NCAPI deadline in seconds "
                            "(default: 4x the healthy max latency)")
    chaos.add_argument("--trace", default=None, metavar="PATH",
                       help="record a Perfetto trace of the chaos "
                            "runs here")
    chaos.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="fan per-victim runs across N processes "
                            "(results identical to --jobs 1)")
    chaos.add_argument("--scheduler", default=None,
                       choices=["heap", "wheel"],
                       help="DES kernel (default: heap, or "
                            "$REPRO_SIM_SCHEDULER); results are "
                            "byte-identical across kernels")

    serve_common = argparse.ArgumentParser(add_help=False)
    serve_common.add_argument(
        "--requests", type=int, default=400,
        help="requests per run (default 400)")
    serve_common.add_argument(
        "--seed", type=int, default=0,
        help="workload seed (same seed -> byte-identical run)")
    serve_common.add_argument(
        "--slo", type=float, default=500.0, metavar="MS",
        help="p99 end-to-end latency objective in ms (default 500; "
             "one paper-scale inference is ~100 ms and a loaded "
             "pipeline holds about two batches in flight)")
    serve_common.add_argument(
        "--deadline", type=float, default=None, metavar="MS",
        help="per-request queue deadline in ms (default: none)")
    serve_common.add_argument(
        "--queue-depth", type=int, default=64,
        help="admission queue bound (default 64)")
    serve_common.add_argument(
        "--admission", default="reject-newest",
        choices=["block", "shed-oldest", "reject-newest"],
        help="overload policy at the admission queue")
    serve_common.add_argument(
        "--route", default="round-robin",
        choices=["round-robin", "least-outstanding", "latency-ewma"],
        help="backend routing policy")
    serve_common.add_argument(
        "--max-batch", type=int, default=None,
        help="batch size cap (default: backend preference)")
    serve_common.add_argument(
        "--max-wait", type=float, default=2.0, metavar="MS",
        help="dynamic batcher window in ms (default 2)")
    serve_common.add_argument(
        "--warmup", type=int, default=0,
        help="leading completions excluded from latency stats")
    serve_common.add_argument(
        "--scheduler", default=None, choices=["heap", "wheel"],
        help="DES kernel (default: heap, or $REPRO_SIM_SCHEDULER); "
             "results are byte-identical across kernels")

    serve_run = sub.add_parser(
        "serve-run", parents=[serve_common],
        help="one open-loop serving run with a full SLO report")
    serve_run.add_argument(
        "--backends", default="vpu8",
        help="comma list of cpu / gpu / vpuN targets (default vpu8)")
    serve_run.add_argument(
        "--workload", default="poisson",
        choices=["poisson", "bursty", "diurnal", "replay"])
    serve_run.add_argument(
        "--rate", type=float, default=50.0,
        help="arrival rate in req/s: poisson rate, bursty base rate, "
             "diurnal peak rate (default 50)")
    serve_run.add_argument(
        "--burst-rate", type=float, default=None,
        help="bursty peak rate (default: 4x --rate)")
    serve_run.add_argument(
        "--period", type=float, default=10.0,
        help="diurnal period in seconds (default 10)")
    serve_run.add_argument(
        "--replay", default=None, metavar="PATH",
        help="arrival-offsets file for --workload replay")
    serve_run.add_argument(
        "--kill-stick", type=int, default=None, metavar="K",
        help="fail VPU stick K mid-run (runs a baseline first)")
    serve_run.add_argument(
        "--kill-at", type=float, default=0.5, metavar="FRAC",
        help="fault time as a fraction of the baseline's serving "
             "wall time (default 0.5)")
    serve_run.add_argument(
        "--kind", default="death",
        choices=["death", "hang", "thermal", "busy"])
    serve_run.add_argument(
        "--timeout", type=float, default=0.5,
        help="per-call NCAPI deadline in s for chaos runs "
             "(default 0.5)")
    serve_run.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a Perfetto trace + utilisation report "
             "(includes per-request flow events and a waterfall)")
    serve_run.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="dump the metric/trace events as JSONL for offline "
             "trace-analyze")

    serve_sweep = sub.add_parser(
        "serve-sweep", parents=[serve_common],
        help="bisect the max sustainable arrival rate per config")
    serve_sweep.add_argument(
        "--configs", default="vpu1,vpu2,vpu4,vpu8",
        help="comma list of configurations to sweep "
             "(default vpu1,vpu2,vpu4,vpu8)")
    serve_sweep.add_argument(
        "--steps", type=int, default=8,
        help="bisection steps per configuration (default 8)")
    serve_sweep.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan configurations across N processes "
             "(results identical to --jobs 1)")
    serve_sweep.set_defaults(requests=200)

    split_sweep = sub.add_parser(
        "split-sweep",
        help="map the latency/throughput/energy frontier of every "
             "two-tier layer cut")
    split_sweep.add_argument(
        "--devices", default="vpu1+cpu",
        help="placement pair <front>+<back> with exactly one vpu "
             "side (default vpu1+cpu)")
    split_sweep.add_argument(
        "--objective", default="latency",
        choices=["latency", "throughput", "energy"],
        help="objective of the best-cut line (default latency)")
    split_sweep.add_argument(
        "--smoke", action="store_true",
        help="CI-sized model (googlenet-micro) instead of the "
             "paper network")

    cluster_common = argparse.ArgumentParser(add_help=False)
    cluster_common.add_argument(
        "--host-backends", default="vpu2", metavar="SPEC",
        help="comma list of per-host targets, cycled across hosts "
             "(cpu / gpu / vpuN tokens; default vpu2)")
    cluster_common.add_argument(
        "--requests", type=int, default=400,
        help="requests per run (default 400)")
    cluster_common.add_argument(
        "--seed", type=int, default=0,
        help="workload seed (same seed -> byte-identical run)")
    cluster_common.add_argument(
        "--slo", type=float, default=500.0, metavar="MS",
        help="p99 end-to-end latency objective in ms (default 500)")
    cluster_common.add_argument(
        "--deadline", type=float, default=None, metavar="MS",
        help="per-request queue deadline in ms (default: none)")
    cluster_common.add_argument(
        "--queue-depth", type=int, default=64,
        help="per-host admission queue bound (default 64)")
    cluster_common.add_argument(
        "--admission", default="reject-newest",
        choices=["block", "shed-oldest", "reject-newest"],
        help="per-host overload policy")
    cluster_common.add_argument(
        "--max-batch", type=int, default=None,
        help="batch size cap (default: backend preference)")
    cluster_common.add_argument(
        "--max-wait", type=float, default=2.0, metavar="MS",
        help="dynamic batcher window in ms (default 2)")
    cluster_common.add_argument(
        "--warmup", type=int, default=0,
        help="leading completions excluded from latency stats")
    cluster_common.add_argument(
        "--window", type=int, default=8,
        help="per-shard stream window (default 8)")
    cluster_common.add_argument(
        "--spill-threshold", type=int, default=None, metavar="N",
        help="outstanding requests before a shard spills to the "
             "least-loaded host (default: window + queue depth)")
    cluster_common.add_argument(
        "--scheduler", default=None, choices=["heap", "wheel"],
        help="DES kernel (default: heap, or $REPRO_SIM_SCHEDULER); "
             "results are byte-identical across kernels")

    cluster_run = sub.add_parser(
        "cluster-run", parents=[cluster_common],
        help="one sharded multi-host serving run with roll-up report")
    cluster_run.add_argument(
        "--hosts", type=int, default=4,
        help="number of serving hosts / ranks (default 4)")
    cluster_run.add_argument(
        "--rate", type=float, default=100.0,
        help="Poisson arrival rate in req/s (default 100)")
    cluster_run.add_argument(
        "--kill-host", type=int, default=None, metavar="K",
        help="kill whole host K mid-run (runs a baseline first)")
    cluster_run.add_argument(
        "--kill-at", type=float, default=0.5, metavar="FRAC",
        help="kill time as a fraction of the baseline's serving "
             "wall time (default 0.5)")
    cluster_run.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a Perfetto trace (one process group per rank) "
             "+ utilisation report")
    cluster_run.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="dump the metric/trace events as JSONL for offline "
             "trace-analyze")

    cluster_sweep = sub.add_parser(
        "cluster-sweep", parents=[cluster_common],
        help="max sustainable arrival rate per cluster size")
    cluster_sweep.add_argument(
        "--hosts", default=None, metavar="LIST",
        help="comma list of host counts to sweep "
             "(default 1,2,4,8; 1,2 with --smoke)")
    cluster_sweep.add_argument(
        "--steps", type=int, default=8,
        help="bisection steps per host count (default 8)")
    cluster_sweep.add_argument(
        "--smoke", action="store_true",
        help="CI-sized sweep (96 requests, 3 steps, hosts 1,2)")
    cluster_sweep.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan host counts across N processes "
             "(results identical to --jobs 1)")
    cluster_sweep.set_defaults(requests=200)

    autoscale_common = argparse.ArgumentParser(add_help=False)
    autoscale_common.add_argument(
        "--pool", type=int, default=4, metavar="N",
        help="host slots the frontend may scale across (default 4)")
    autoscale_common.add_argument(
        "--peak-rate", type=float, default=None, metavar="RPS",
        help="diurnal peak arrival rate (default: 2.5x one host's "
             "closed-loop throughput)")
    autoscale_common.add_argument(
        "--period", type=float, default=2.0, metavar="S",
        help="diurnal period — one traffic day — in seconds "
             "(default 2)")
    autoscale_common.add_argument(
        "--floor", type=float, default=0.1, metavar="FRAC",
        help="overnight trough as a fraction of peak (default 0.1)")
    autoscale_common.add_argument(
        "--min-hosts", type=int, default=1,
        help="autoscaler floor (default 1)")
    autoscale_common.add_argument(
        "--max-hosts", type=int, default=None,
        help="autoscaler ceiling (default: the pool size)")
    autoscale_common.add_argument(
        "--interval", type=float, default=20.0, metavar="MS",
        help="autoscaler tick interval in ms (default 20)")
    autoscale_common.add_argument(
        "--cooldown", type=float, default=50.0, metavar="MS",
        help="minimum gap between scale actions in ms (default 50)")
    autoscale_common.add_argument(
        "--warm-pool", type=int, default=1, metavar="N",
        help="idle slots kept pre-initialised (default 1)")
    autoscale_common.add_argument(
        "--high-water", type=float, default=4.0, metavar="N",
        help="reactive: per-host outstanding before scale-out "
             "(default 4)")
    autoscale_common.add_argument(
        "--low-water", type=float, default=1.0, metavar="N",
        help="reactive: per-host outstanding after removal that "
             "permits scale-in (default 1)")
    autoscale_common.add_argument(
        "--lead", type=float, default=100.0, metavar="MS",
        help="predictive: pre-warm lead time in ms (default 100)")
    autoscale_common.add_argument(
        "--utilization", type=float, default=0.7, metavar="FRAC",
        help="predictive: target per-host utilisation (default 0.7)")
    autoscale_common.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run (120 requests, pool of 3)")
    autoscale_common.add_argument(
        "--fluid", action="store_true",
        help="hybrid fluid/DES model instead of per-request DES "
             "(million-user days in milliseconds; see DESIGN.md "
             "section 16 for the validity envelope)")

    autoscale_run = sub.add_parser(
        "autoscale-run", parents=[cluster_common, autoscale_common],
        help="one elastic cluster run over a diurnal day trace")
    autoscale_run.add_argument(
        "--policy", default="reactive",
        choices=["reactive", "predictive"],
        help="scale policy (default reactive)")
    autoscale_run.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a Perfetto trace (one process group per rank) "
             "+ utilisation report")
    autoscale_run.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="dump the metric/trace events as JSONL for offline "
             "trace-analyze")
    autoscale_run.add_argument(
        "--fluid-gate", action="store_true",
        help="run BOTH the fluid model and the pure-DES cluster, "
             "print the equivalence gate, exit non-zero on "
             "disagreement")

    autoscale_sweep = sub.add_parser(
        "autoscale-sweep",
        parents=[cluster_common, autoscale_common],
        help="cost-vs-SLO frontier: elastic policies vs fixed-N")
    autoscale_sweep.set_defaults(requests=300)

    flow_common = argparse.ArgumentParser(add_help=False)
    flow_common.add_argument(
        "--scale", default="micro", choices=["micro", "mini"],
        help="workflow model scale (default micro)")
    flow_common.add_argument(
        "--devices", type=int, default=4,
        help="NCS sticks behind each VPU stage (default 4)")
    flow_common.add_argument(
        "--requests", type=int, default=120,
        help="workflow requests per run (default 120)")
    flow_common.add_argument(
        "--seed", type=int, default=0,
        help="workload seed (same seed -> byte-identical run)")
    flow_common.add_argument(
        "--slo", type=float, default=800.0, metavar="MS",
        help="workflow p99 end-to-end objective in ms (default 800: "
             "a cascade holds two serving stages plus a join)")
    flow_common.add_argument(
        "--deadline", type=float, default=None, metavar="MS",
        help="per-workflow deadline in ms, shared by every stage the "
             "request touches (default: none)")
    flow_common.add_argument(
        "--queue-depth", type=int, default=64,
        help="per-stage admission queue bound (default 64)")
    flow_common.add_argument(
        "--admission", default="reject-newest",
        choices=["block", "shed-oldest", "reject-newest"],
        help="per-stage overload policy")
    flow_common.add_argument(
        "--max-wait", type=float, default=2.0, metavar="MS",
        help="per-stage dynamic batcher window in ms (default 2)")
    flow_common.add_argument(
        "--warmup", type=int, default=0,
        help="leading completed workflows excluded from latency "
             "stats")
    flow_common.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run (40 workflows, 2 sticks)")

    workflow_run = sub.add_parser(
        "workflow-run", parents=[flow_common],
        help="one multi-model workflow DAG run (cascade / ensemble / "
             "escalate) with per-stage + workflow SLO report")
    workflow_run.add_argument(
        "--workflow", default="cascade",
        choices=["cascade", "ensemble", "escalate", "monolithic"],
        help="built-in workflow to run (default cascade)")
    workflow_run.add_argument(
        "--rate", type=float, default=40.0,
        help="Poisson arrival rate in workflows/s (default 40)")
    workflow_run.add_argument(
        "--stage-slo", type=float, default=None, metavar="MS",
        help="per-stage SLO in ms for the cascade's model stages "
             "(default: none)")
    workflow_run.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a Perfetto trace + utilisation report (the "
             "waterfall spans every stage of the cascade)")
    workflow_run.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="dump the metric/trace events as JSONL for offline "
             "trace-analyze")

    workflow_sweep = sub.add_parser(
        "workflow-sweep", parents=[flow_common],
        help="cascade vs monolithic classify at matched offered "
             "rates")
    workflow_sweep.add_argument(
        "--rates", default=None, metavar="LIST",
        help="comma list of offered rates in workflows/s "
             "(default 20,40,80; 20,40 with --smoke)")
    workflow_sweep.set_defaults(requests=80)

    trace_analyze = sub.add_parser(
        "trace-analyze",
        help="analyze a recorded metrics JSONL dump offline")
    trace_analyze.add_argument(
        "path", metavar="PATH",
        help="metrics JSONL file from serve-run/cluster-run "
             "--metrics")
    trace_analyze.add_argument(
        "--window", type=float, default=50.0, metavar="MS",
        help="timeline aggregation window in ms (default 50)")
    trace_analyze.add_argument(
        "--slo", type=float, default=500.0, metavar="MS",
        help="SLO threshold in ms for burn-rate analysis "
             "(default 500)")
    trace_analyze.add_argument(
        "--waterfalls", type=int, default=1, metavar="N",
        help="completed request waterfalls to print (default 1)")

    perf_run = sub.add_parser(
        "perf-run",
        help="time the wall-clock perf suite; write / check "
             "BENCH_PR9.json")
    perf_run.add_argument(
        "--smoke", action="store_true",
        help="CI-sized workloads (seconds instead of a minute)")
    perf_run.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the measured BENCH json here (both modes)")
    perf_run.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="previously recorded BENCH file to embed in --out "
             "(adds before/after speedups)")
    perf_run.add_argument(
        "--check", default=None, metavar="PATH",
        help="compare against this committed BENCH file; exits "
             "non-zero on a regression beyond --tolerance")
    perf_run.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional wall-clock regression for --check "
             "(default 0.25)")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command in _FIGURES:
        return _cmd_figure(args.command, args)
    if args.command == "headline":
        return _cmd_headline(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "audit":
        return _cmd_audit(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "profile-run":
        return _cmd_profile_run(args)
    if args.command == "chaos-run":
        return _cmd_chaos_run(args)
    if args.command == "serve-run":
        return _cmd_serve_run(args)
    if args.command == "serve-sweep":
        return _cmd_serve_sweep(args)
    if args.command == "split-sweep":
        return _cmd_split_sweep(args)
    if args.command == "cluster-run":
        return _cmd_cluster_run(args)
    if args.command == "cluster-sweep":
        return _cmd_cluster_sweep(args)
    if args.command == "autoscale-run":
        return _cmd_autoscale_run(args)
    if args.command == "autoscale-sweep":
        return _cmd_autoscale_sweep(args)
    if args.command == "workflow-run":
        return _cmd_workflow_run(args)
    if args.command == "workflow-sweep":
        return _cmd_workflow_sweep(args)
    if args.command == "trace-analyze":
        return _cmd_trace_analyze(args)
    if args.command == "perf-run":
        return _cmd_perf_run(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
