"""Command-line interface: regenerate any paper artefact from a shell.

::

    python -m repro list
    python -m repro fig6a --images 160 --trace /tmp/fig6a.json
    python -m repro fig7a --scale default
    python -m repro headline
    python -m repro report --scale smoke     # everything
    python -m repro profile --model googlenet-mini
    python -m repro profile-run --target vpu8 --trace /tmp/run.json
    python -m repro chaos-run --devices 8 --kill-at 0.5 --kind death

``--trace out.json`` on any experiment records a span timeline into
a Chrome/Perfetto ``trace_event`` file (open at
https://ui.perfetto.dev) and prints the per-device utilisation
report; ``profile-run`` does one instrumented run and reports even
without ``--trace``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.harness import figures
from repro.harness.ascii_plot import bar_chart, line_chart
from repro.harness.tables import render_comparison, render_figure_table

_FIGURES: dict[str, tuple[str, Callable]] = {
    "fig6a": ("throughput per subset (batch 8)",
              lambda args, obs=None: figures.fig6a_throughput_per_subset(
                  images_per_subset=args.images, obs=obs)),
    "fig6b": ("normalized scaling vs batch size",
              lambda args, obs=None: figures.fig6b_normalized_scaling(
                  images=args.images, obs=obs)),
    "fig7a": ("top-1 error per subset (FP32 vs FP16)",
              lambda args, obs=None: figures.fig7a_top1_error(
                  scale=args.scale, obs=obs)),
    "fig7b": ("confidence difference per subset",
              lambda args, obs=None: figures.fig7b_confidence_difference(
                  scale=args.scale, obs=obs)),
    "fig8a": ("throughput per Watt",
              lambda args, obs=None: figures.fig8a_throughput_per_watt(
                  images=args.images, obs=obs)),
    "fig8b": ("projected throughput to 16 VPUs",
              lambda args, obs=None: figures.fig8b_projected_throughput(
                  images=args.images, obs=obs)),
}


def _obs_from_args(args: argparse.Namespace):
    """An ObsSession when --trace was given, else None."""
    if getattr(args, "trace", None) is None:
        return None
    _check_trace_path(args.trace)
    from repro.obs import ObsSession

    return ObsSession()


def _check_trace_path(trace: str) -> None:
    """Fail before the run, not after: the trace file is written last,
    and a bad path would discard minutes of simulation."""
    from pathlib import Path

    from repro.errors import ObservabilityError

    parent = Path(trace).resolve().parent
    if not parent.is_dir():
        raise ObservabilityError(
            f"--trace: directory {parent} does not exist")


def _finish_trace(args: argparse.Namespace, obs) -> None:
    """Print the utilisation report and write the trace file."""
    if obs is None:
        return
    from repro.harness.export import save_trace_json
    from repro.obs import utilisation_report

    print(utilisation_report(obs))
    path = save_trace_json(obs, args.trace)
    print(f"wrote trace {path} (open in https://ui.perfetto.dev)")

_BAR_FIGURES = {"fig6a", "fig7a"}


def _cmd_list(_args: argparse.Namespace) -> int:
    print("available experiments:")
    for name, (desc, _) in _FIGURES.items():
        print(f"  {name:<9} {desc}")
    print("  headline  the paper's §IV/§V headline numbers")
    print("  audit     verify every quantitative claim in the paper")
    print("  report    all of the above in one run")
    print("  profile   per-layer VPU timing report for a zoo model")
    print("  profile-run  one instrumented run + utilisation report")
    print("  chaos-run    seeded fault-injection sweep (kill stick k)")
    return 0


def _render(name: str, result) -> None:
    print(render_figure_table(result))
    print()
    if name in _BAR_FIGURES:
        print(bar_chart(result))
    else:
        print(line_chart(result))
    print()


def _cmd_figure(name: str, args: argparse.Namespace) -> int:
    obs = _obs_from_args(args)
    result = _FIGURES[name][1](args, obs)
    _render(name, result)
    _finish_trace(args, obs)
    if getattr(args, "json_dir", None):
        from pathlib import Path

        from repro.harness.export import save_figure_json

        out = Path(args.json_dir)
        out.mkdir(parents=True, exist_ok=True)
        save_figure_json(result, out / f"{name}.json")
        print(f"saved {out / (name + '.json')}")
    return 0


def _cmd_headline(args: argparse.Namespace) -> int:
    scale = None if args.scale in (None, "none") else args.scale
    obs = _obs_from_args(args)
    rows = figures.headline_table(images=args.images, error_scale=scale,
                                  obs=obs)
    print(render_comparison(rows, title="headline: paper vs measured"))
    _finish_trace(args, obs)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    md_sections: list[str] = []
    results = {}
    obs = _obs_from_args(args)
    skip_functional = args.scale in (None, "none")
    names = [n for n in _FIGURES
             if not (skip_functional and n in ("fig7a", "fig7b"))]
    for name in names:
        print("=" * 72)
        results[name] = _FIGURES[name][1](args, obs)
        _render(name, results[name])
        if getattr(args, "json_dir", None):
            from pathlib import Path

            from repro.harness.export import save_figure_json

            out = Path(args.json_dir)
            out.mkdir(parents=True, exist_ok=True)
            save_figure_json(results[name], out / f"{name}.json")
    print("=" * 72)
    scale = None if args.scale in (None, "none") else args.scale
    rows = figures.headline_table(images=args.images,
                                  error_scale=scale, obs=obs)
    print(render_comparison(rows, title="headline: paper vs measured"))
    _finish_trace(args, obs)

    if getattr(args, "markdown", None):
        from pathlib import Path

        from repro.harness.tables import (
            render_comparison_markdown,
            render_figure_markdown,
        )

        md_sections = [render_figure_markdown(results[n])
                       for n in names]
        md = ("# Reproduction report\n\n"
              + render_comparison_markdown(rows) + "\n"
              + "\n".join(md_sections))
        Path(args.markdown).write_text(md)
        print(f"wrote {args.markdown}")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.harness.claims import (
        render_audit,
        verify_claims,
        verify_functional_claims,
    )

    obs = _obs_from_args(args)
    results = verify_claims(images=args.images, obs=obs)
    if args.scale not in (None, "none"):
        results = results + verify_functional_claims(scale=args.scale)
    print(render_audit(results))
    _finish_trace(args, obs)
    return 0 if all(r.passed for r in results) else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.nn import get_model
    from repro.nn.weights import initialize_network
    from repro.vpu import compile_graph
    from repro.vpu.compiler import per_layer_report

    net = get_model(args.model)
    initialize_network(net)
    graph = compile_graph(net, num_shaves=args.shaves)
    print(per_layer_report(graph, top=args.top))
    return 0


def _cmd_profile_run(args: argparse.Namespace) -> int:
    from repro.harness.figures import _timing_framework
    from repro.obs import ObsSession, utilisation_report

    if args.trace:
        _check_trace_path(args.trace)
    obs = ObsSession()
    fw = _timing_framework(args.images, obs=obs)
    run = fw.run("synthetic", args.target, batch_size=args.batch)
    print(run.summary())
    print()
    print(utilisation_report(obs, run.wall_seconds))
    if args.trace:
        from repro.harness.export import save_trace_json

        path = save_trace_json(obs, args.trace)
        print(f"wrote trace {path} (open in https://ui.perfetto.dev)")
    return 0


def _cmd_chaos_run(args: argparse.Namespace) -> int:
    """Deterministic chaos sweep: kill stick k at t, for each k.

    Runs a healthy baseline first, then one fault-tolerant run per
    victim stick with a seeded :class:`FaultPlan` that fails it at
    ``--kill-at`` of the baseline wall time.  A run passes when every
    non-abandoned image still comes back classified; the command
    exits non-zero if any run loses work it should have saved.
    """
    from repro.harness.figures import paper_timing_graph
    from repro.ncsw import FaultPlan, IntelVPU, NCSw, SyntheticSource
    from repro.ncsw.faults import BUSY

    if not 0.0 <= args.kill_at <= 1.0:
        print(f"--kill-at must be in [0, 1], got {args.kill_at}")
        return 2
    graph = paper_timing_graph()

    def make_run(plan=None, timeout=None, obs=None):
        fw = NCSw(obs=obs)
        fw.add_source("synthetic", SyntheticSource(args.images))
        fw.add_target("vpu", IntelVPU(
            graph=graph, num_devices=args.devices, functional=False,
            fault_plan=plan, call_timeout=timeout))
        return fw.run("synthetic", "vpu", batch_size=args.batch)

    base = make_run()
    t_start = min(r.t_submit for r in base.records)
    kill_time = t_start + args.kill_at * base.wall_seconds
    max_latency = max(r.latency for r in base.records)
    # A hung call can only be detected by deadline; several healthy
    # inference times of slack keeps false positives at zero.
    timeout = (args.timeout if args.timeout is not None
               else max(4.0 * max_latency, 0.05))
    busy_duration = 0.1 * base.wall_seconds
    baseline_tput = base.throughput()
    print(f"baseline: {base.summary()}")
    print(f"chaos: kind={args.kind} kill_at={kill_time * 1000:.2f} ms "
          f"(t0+{args.kill_at:.0%} of wall) call_timeout={timeout:.3f} s "
          f"seed={args.seed}")

    if args.random_plans > 0:
        # Seeded random schedules: plan i draws its victim and kill
        # time from seed+i.  Same seed -> same sweep, byte for byte.
        plans = [(f"seed {args.seed + i}",
                  FaultPlan.seeded(
                      args.seed + i, args.devices,
                      horizon=base.wall_seconds, start=t_start,
                      kinds=(args.kind,), busy_duration=busy_duration))
                 for i in range(args.random_plans)]
    else:
        victims = ([args.kill_stick] if args.kill_stick is not None
                   else list(range(args.devices)))
        plans = [(f"kill vpu{victim}",
                  FaultPlan.kill(
                      victim, kill_time, kind=args.kind,
                      duration=(busy_duration if args.kind == BUSY
                                else 0.0)))
                 for victim in victims]
    obs = _obs_from_args(args)
    failed = False
    for label, plan in plans:
        res = make_run(plan=plan, timeout=timeout, obs=obs)
        ok = res.images == args.images - res.abandoned
        failed = failed or not ok
        # Post-fault throughput over the survivors only.
        fault_time = min((f.at for f in plan.faults),
                         default=kill_time)
        after = [r for r in res.records if r.t_complete > fault_time]
        tput = ""
        if after:
            window = max(r.t_complete for r in after) - fault_time
            if window > 0:
                tput = (f" post-fault {len(after) / window:.1f} img/s "
                        f"({len(after) / window / baseline_tput:.0%} "
                        "of baseline)")
        print(f"  {label}: {'ok' if ok else 'LOST WORK'} | "
              f"{res.images}/{args.images} classified, "
              f"{res.reassigned} reassigned, {res.abandoned} "
              f"abandoned, {len(res.failures)} failure event(s)"
              + tput)
    _finish_trace(args, obs)
    if failed:
        print("chaos-run: FAILED (work lost without being abandoned)")
        return 1
    print("chaos-run: all victims survived with full accounting")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--images", type=int, default=160,
                        help="timing images per measurement")
    common.add_argument("--scale", default="default",
                        help="functional scale: smoke|default|paper")
    common.add_argument("--json-dir", default=None,
                        help="also save each figure as JSON here")
    common.add_argument("--trace", default=None, metavar="PATH",
                        help="record a Perfetto trace_event JSON here "
                             "and print the utilisation report")

    for name, (desc, _) in _FIGURES.items():
        sub.add_parser(name, help=desc, parents=[common])
    sub.add_parser("headline", help="headline paper-vs-measured table",
                   parents=[common])
    report = sub.add_parser("report", help="regenerate everything",
                            parents=[common])
    sub.add_parser("audit", help="verify every quantitative claim",
                   parents=[common])
    report.add_argument("--markdown", default=None,
                        help="write the full report as markdown here")

    profile = sub.add_parser("profile",
                             help="per-layer VPU timing report")
    profile.add_argument("--model", default="googlenet-mini")
    profile.add_argument("--shaves", type=int, default=12)
    profile.add_argument("--top", type=int, default=None)

    profile_run = sub.add_parser(
        "profile-run",
        help="one instrumented run + per-device utilisation report")
    profile_run.add_argument(
        "--target", default="vpu8",
        choices=["cpu", "gpu", "vpu1", "vpu2", "vpu4", "vpu8"])
    profile_run.add_argument("--images", type=int, default=160)
    profile_run.add_argument("--batch", type=int, default=8)
    profile_run.add_argument("--trace", default=None, metavar="PATH",
                             help="also write the Perfetto trace here")

    chaos = sub.add_parser(
        "chaos-run",
        help="seeded fault-injection sweep over the multi-VPU rig")
    chaos.add_argument("--devices", type=int, default=8,
                       help="NCS sticks to drive (1-8)")
    chaos.add_argument("--images", type=int, default=160)
    chaos.add_argument("--batch", type=int, default=8)
    chaos.add_argument("--kill-stick", type=int, default=None,
                       metavar="K",
                       help="fail only stick K (default: sweep all)")
    chaos.add_argument("--kill-at", type=float, default=0.5,
                       metavar="FRAC",
                       help="fault time as a fraction of the healthy "
                            "run's wall time (default 0.5)")
    chaos.add_argument("--kind", default="death",
                       choices=["death", "hang", "thermal", "busy"])
    chaos.add_argument("--seed", type=int, default=0,
                       help="base seed for --random-plans schedules")
    chaos.add_argument("--random-plans", type=int, default=0,
                       metavar="N",
                       help="run N seeded random schedules instead of "
                            "the per-stick sweep")
    chaos.add_argument("--timeout", type=float, default=None,
                       help="per-call NCAPI deadline in seconds "
                            "(default: 4x the healthy max latency)")
    chaos.add_argument("--trace", default=None, metavar="PATH",
                       help="record a Perfetto trace of the chaos "
                            "runs here")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command in _FIGURES:
        return _cmd_figure(args.command, args)
    if args.command == "headline":
        return _cmd_headline(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "audit":
        return _cmd_audit(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "profile-run":
        return _cmd_profile_run(args)
    if args.command == "chaos-run":
        return _cmd_chaos_run(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
