"""Machine-readable registry of the paper's quantitative claims.

Every number the paper asserts — abstract, §IV, §V — is catalogued
here with its source quote, and :func:`verify_claims` evaluates each
against the simulation, producing a pass/fail audit.  This is the
strongest form of reproduction statement the repo can make: not "the
figures look similar" but "every sentence with a number in it has been
re-measured".

The tolerance encodes the claim's nature: anchored quantities (the
calibration targets) must match tightly; derived shapes (scaling
factors, crossovers) get the slack of a simulation that shares no
code with the authors' testbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ReproError


@dataclass(frozen=True)
class Claim:
    """One quantitative statement from the paper."""

    claim_id: str
    section: str
    quote: str
    paper_value: float
    rel_tolerance: float


@dataclass(frozen=True)
class ClaimResult:
    """Audit outcome for one claim."""

    claim: Claim
    measured: float
    passed: bool

    @property
    def deviation(self) -> float:
        """Relative deviation of the measurement from the paper."""
        if self.claim.paper_value == 0:
            return float("inf")
        return abs(self.measured - self.claim.paper_value) / abs(
            self.claim.paper_value)


CLAIMS: list[Claim] = [
    Claim("vpu-single-latency", "§IV-A",
          "the values are normalized ... 100.7ms for the VPU",
          100.7e-3, 0.03),
    Claim("cpu-single-latency", "§IV-A",
          "26.0ms for the CPU", 26.0e-3, 0.03),
    Claim("gpu-single-latency", "§IV-A",
          "25.9ms for the GPU", 25.9e-3, 0.03),
    Claim("vpu-throughput-8", "§IV-A",
          "the throughput using eight Myriad 2 VPU chips is "
          "approximately 77.2 img/s", 77.2, 0.05),
    Claim("cpu-throughput-8", "§IV-A",
          "an average of 44.0 img/s (22.7ms per inference)", 44.0,
          0.05),
    Claim("gpu-throughput-8", "§IV-A",
          "a throughput of 74.2 img/s on average per subset", 74.2,
          0.05),
    Claim("vpu-scaling-8", "§IV-A",
          "reaching a performance increase factor of close to 8x",
          7.8, 0.08),
    Claim("cpu-scaling-8", "§IV-A",
          "an improvement of only 14.7% for the last case (1.1x)",
          1.147, 0.05),
    Claim("gpu-scaling-8", "§IV-A",
          "improves only 92.5% for the last case (1.9x)", 1.925,
          0.05),
    Claim("vpu-vs-cpu-single-factor", "§V",
          "the execution time per inference using one chip is 4x "
          "slower compared to a reference CPU / GPU implementation",
          4.0, 0.12),
    Claim("vpu-img-per-watt", "§V",
          "the throughput is 3.97 img/W when using one VPU", 3.97,
          0.05),
    Claim("cpu-img-per-watt", "§V",
          "The CPU features a theoretical throughput of 0.55 img/W",
          0.55, 0.05),
    Claim("gpu-img-per-watt", "§V",
          "The GPU shows similar results, with 0.93 img/W", 0.93,
          0.05),
    Claim("img-per-watt-advantage", "abstract",
          "the observed throughput, measured as number of inferences "
          "per Watt, is over 3x higher in comparison", 3.0, 0.0),
    Claim("vpu-projected-16", "§V",
          "a projected throughput of 153.0 img/s using 16 VPU chips",
          153.0, 0.05),
    Claim("vpu-projected-vs-cpu", "§V",
          "a factor of 3.4x improvement over the CPU implementation",
          3.4, 0.06),
    Claim("vpu-projected-vs-gpu", "§V",
          "a factor of 1.9x over the GPU version", 1.9, 0.06),
    Claim("cpu-max-throughput", "§V",
          "a maximum of 44.5 img/s", 44.5, 0.05),
    Claim("gpu-max-throughput", "§V",
          "and 79.9 img/s, respectively", 79.9, 0.05),
]

#: Functional claims need a calibrated context; verified separately so
#: the timing audit stays fast.
FUNCTIONAL_CLAIMS: list[Claim] = [
    Claim("top1-error", "abstract",
          "the estimated top-1 error rate is 32% on average", 0.32,
          0.15),
    Claim("fp16-error-delta", "§IV-B",
          "the top-1 inference error using the VPU implementation "
          "with FP16 arithmetic only varies 0.09% in comparison",
          0.0009, 0.0),  # bounded, not matched — see verifier
    Claim("confidence-diff", "§IV-B",
          "the average difference per subset is estimated at 0.44% "
          "on average", 0.0044, 0.0),  # same-order bound
]


def _timing_measurements(images: int,
                         obs=None) -> dict[str, float]:
    from repro.harness.figures import (
        fig6b_normalized_scaling,
        fig8a_throughput_per_watt,
        fig8b_projected_throughput,
    )

    fig6b = fig6b_normalized_scaling(images=images, obs=obs)
    fig8a = fig8a_throughput_per_watt(images=images, obs=obs)
    fig8b = fig8b_projected_throughput(images=images, obs=obs)

    vpu_abs = fig8b.by_label("vpu").y
    cpu_abs = fig8b.by_label("cpu").y
    gpu_abs = fig8b.by_label("gpu").y
    return {
        "vpu-single-latency": 1.0 / vpu_abs[0],
        "cpu-single-latency": 1.0 / cpu_abs[0],
        "gpu-single-latency": 1.0 / gpu_abs[0],
        "vpu-throughput-8": vpu_abs[3],
        "cpu-throughput-8": cpu_abs[3],
        "gpu-throughput-8": gpu_abs[3],
        "vpu-scaling-8": fig6b.by_label("vpu").y[3],
        "cpu-scaling-8": fig6b.by_label("cpu").y[3],
        "gpu-scaling-8": fig6b.by_label("gpu").y[3],
        "vpu-vs-cpu-single-factor": cpu_abs[0] / vpu_abs[0],
        "vpu-img-per-watt": fig8a.by_label("vpu").y[0],
        "cpu-img-per-watt": fig8a.by_label("cpu").y[3],
        "gpu-img-per-watt": fig8a.by_label("gpu").y[3],
        "img-per-watt-advantage": (
            min(fig8a.by_label("vpu").y)
            / max(max(fig8a.by_label("cpu").y),
                  max(fig8a.by_label("gpu").y))),
        "vpu-projected-16": vpu_abs[4],
        "vpu-projected-vs-cpu": vpu_abs[4] / cpu_abs[4],
        "vpu-projected-vs-gpu": vpu_abs[4] / gpu_abs[4],
        "cpu-max-throughput": cpu_abs[4],
        "gpu-max-throughput": gpu_abs[4],
    }


#: Claims whose check is a bound rather than a match.
_BOUND_CHECKS: dict[str, Callable[[float, float], bool]] = {
    # "over 3x higher": measured advantage must exceed the quoted 3x.
    "img-per-watt-advantage": lambda measured, paper: measured > paper,
    # FP16 delta "only varies 0.09%": ours must also be negligible
    # (within a few tenths of a percentage point).
    "fp16-error-delta": lambda measured, paper: measured <= 0.01,
    # Confidence diff 0.44%: same order of magnitude, nonzero.
    "confidence-diff": lambda measured, paper:
        0.0 < measured <= 3 * paper,
}


def verify_claims(images: int = 96, obs=None) -> list[ClaimResult]:
    """Audit every timing claim; returns one result per claim.

    ``obs`` optionally records the audit's runs into an
    :class:`~repro.obs.session.ObsSession` timeline.
    """
    measured = _timing_measurements(images, obs=obs)
    results = []
    for claim in CLAIMS:
        if claim.claim_id not in measured:
            raise ReproError(
                f"no measurement wired for claim {claim.claim_id!r}")
        value = measured[claim.claim_id]
        check = _BOUND_CHECKS.get(claim.claim_id)
        if check is not None:
            passed = check(value, claim.paper_value)
        else:
            passed = (abs(value - claim.paper_value)
                      <= claim.rel_tolerance * abs(claim.paper_value))
        results.append(ClaimResult(claim, float(value), passed))
    return results


def verify_functional_claims(scale: str = "smoke"
                             ) -> list[ClaimResult]:
    """Audit the accuracy/precision claims at a functional scale."""
    from repro.harness.figures import (
        fig7a_top1_error,
        fig7b_confidence_difference,
    )

    fig7a = fig7a_top1_error(scale=scale)
    fig7b = fig7b_confidence_difference(scale=scale)
    cpu_err = float(np.mean(fig7a.by_label("cpu_fp32").y))
    vpu_err = float(np.mean(fig7a.by_label("vpu_fp16").y))
    conf = float(np.mean(fig7b.series[0].y))
    measured = {
        "top1-error": cpu_err,
        "fp16-error-delta": abs(cpu_err - vpu_err),
        "confidence-diff": conf,
    }
    results = []
    for claim in FUNCTIONAL_CLAIMS:
        value = measured[claim.claim_id]
        check = _BOUND_CHECKS.get(claim.claim_id)
        if check is not None:
            passed = check(value, claim.paper_value)
        else:
            passed = (abs(value - claim.paper_value)
                      <= claim.rel_tolerance * abs(claim.paper_value))
        results.append(ClaimResult(claim, value, passed))
    return results


def render_audit(results: list[ClaimResult]) -> str:
    """Text table of the claim audit."""
    lines = ["claim audit (every quantitative statement in the paper):",
             f"  {'claim':<26} {'section':<9} {'paper':>10} "
             f"{'measured':>10} {'ok':>3}"]
    for r in results:
        lines.append(
            f"  {r.claim.claim_id:<26} {r.claim.section:<9} "
            f"{r.claim.paper_value:>10.4g} {r.measured:>10.4g} "
            f"{'yes' if r.passed else 'NO':>3}")
    passed = sum(1 for r in results if r.passed)
    lines.append(f"  {passed}/{len(results)} claims verified")
    return "\n".join(lines)
