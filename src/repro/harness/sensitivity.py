"""Sensitivity analysis of the headline results.

A simulation study owes its reader an answer to "which modelling
assumptions matter?".  This module perturbs one substrate parameter at
a time — DDR bandwidth, USB bandwidth, media-clock frequency, SHAVE
count — and measures the effect on the two headline quantities:
single-stick latency and 8-stick throughput.  The reported elasticity
(d ln output / d ln parameter) separates parameters the conclusions
lean on (clock, SHAVEs) from those they are robust to (USB bandwidth,
within reason).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator

from repro.errors import ReproError
from repro.ncs.ncapi import NCAPI
from repro.ncs.usb import paper_testbed_topology
from repro.sim.core import Environment, Event
from repro.vpu.compiler.compile import CompiledGraph, compile_graph


@dataclass(frozen=True)
class SensitivityRow:
    """Effect of scaling one parameter by one factor."""

    parameter: str
    factor: float
    single_latency_s: float
    multi8_throughput: float


def _measure(graph: CompiledGraph, usb_scale: float = 1.0,
             images: int = 32) -> tuple[float, float]:
    """(single-stick latency, 8-stick throughput) for a graph."""
    from repro.vpu.myriad2 import Myriad2Config

    chip_config = Myriad2Config(freq_hz=graph.freq_hz)

    def run(devices: int) -> float:
        env = Environment()
        topo = paper_testbed_topology(env, num_devices=devices)
        for link in topo.links.values():
            link.bandwidth *= usb_scale
        api = NCAPI(env, topo, functional=False,
                    chip_config=chip_config)

        def scenario() -> Generator[Event, None, float]:
            opens = [api.open_device(i) for i in range(devices)]
            handles = yield env.all_of(opens)
            devs = [handles[ev] for ev in opens]
            allocs = [d.allocate_compiled(graph) for d in devs]
            graphs = yield env.all_of(allocs)
            handles_list = [graphs[ev] for ev in allocs]
            t0 = env.now
            from repro.ncsw.scheduler import MultiVPUScheduler
            from repro.ncsw.sources import SyntheticSource
            sched = MultiVPUScheduler(env, handles_list)
            yield sched.run(list(SyntheticSource(images)))
            return images / (env.now - t0)

        return env.run(until=env.process(scenario()))

    single_throughput = run(1)
    multi8 = run(8)
    return 1.0 / single_throughput, multi8


def sensitivity_analysis(
        factors: tuple[float, ...] = (0.5, 1.0, 2.0),
        images: int = 32) -> list[SensitivityRow]:
    """Sweep each substrate parameter across *factors*."""
    if 1.0 not in factors:
        raise ReproError("factors must include the baseline 1.0")
    from repro.harness.experiment import paper_timing_network

    net = paper_timing_network()
    rows: list[SensitivityRow] = []
    for factor in factors:
        # DDR bandwidth scaling (spilled-layer streaming cost).
        g = compile_graph(net, ddr_bandwidth=4e9 * factor)
        lat, thr = _measure(g, images=images)
        rows.append(SensitivityRow("ddr_bandwidth", factor, lat, thr))
        # Media clock frequency.
        g = compile_graph(net, freq_hz=600e6 * factor)
        lat, thr = _measure(g, images=images)
        rows.append(SensitivityRow("clock_frequency", factor, lat, thr))
        # USB bandwidth (transfer path only; graph unchanged).
        g = compile_graph(net)
        lat, thr = _measure(g, usb_scale=factor, images=images)
        rows.append(SensitivityRow("usb_bandwidth", factor, lat, thr))
        # SHAVE count scales only down — 12 is the full chip, so
        # super-unity factors would silently repeat the baseline and
        # flatten the elasticity.
        if factor <= 1.0:
            shaves = max(1, round(12 * factor))
            g = compile_graph(net, num_shaves=shaves)
            lat, thr = _measure(g, images=images)
            rows.append(SensitivityRow("shave_count", factor, lat, thr))
    return rows


def elasticity(rows: list[SensitivityRow], parameter: str,
               output: str = "latency") -> float:
    """Log-log slope of *output* against the parameter's factor.

    ``output`` is ``'latency'`` (single stick) or ``'throughput'``
    (8 sticks).  Uses the extreme factors of the sweep.
    """
    mine = sorted((r for r in rows if r.parameter == parameter),
                  key=lambda r: r.factor)
    if len(mine) < 2:
        raise ReproError(f"need >= 2 factors for {parameter!r}")
    lo, hi = mine[0], mine[-1]
    if output == "latency":
        y_lo, y_hi = lo.single_latency_s, hi.single_latency_s
    elif output == "throughput":
        y_lo, y_hi = lo.multi8_throughput, hi.multi8_throughput
    else:
        raise ReproError(f"unknown output {output!r}")
    return (math.log(y_hi / y_lo)
            / math.log(hi.factor / lo.factor))


def render_sensitivity(rows: list[SensitivityRow]) -> str:
    """Text table of the sweep plus elasticities."""
    lines = ["sensitivity analysis (paper-scale GoogLeNet):",
             f"  {'parameter':<16} {'factor':>7} {'1-stick ms':>11} "
             f"{'8-stick img/s':>14}"]
    for r in sorted(rows, key=lambda r: (r.parameter, r.factor)):
        lines.append(
            f"  {r.parameter:<16} {r.factor:>7.2f} "
            f"{r.single_latency_s * 1000:>11.2f} "
            f"{r.multi8_throughput:>14.2f}")
    lines.append("  elasticities (d ln latency / d ln parameter):")
    for p in sorted({r.parameter for r in rows}):
        lines.append(f"    {p:<16} {elasticity(rows, p):+6.3f}")
    return "\n".join(lines)
