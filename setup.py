"""Setup shim for environments without the `wheel` package.

`pip install -e .` uses pyproject.toml when PEP-517 tooling is complete;
this shim lets `python setup.py develop` work offline.
"""
from setuptools import setup

setup()
